package core

import (
	"runtime"
	"sort"
	"time"

	"github.com/spectrecep/spectre/internal/deptree"
	"github.com/spectrecep/spectre/internal/event"
	"github.com/spectrecep/spectre/internal/matcher"
	"github.com/spectrecep/spectre/internal/window"
)

// slotLoop drives one scheduling slot with a dedicated goroutine until
// stop: pick up the scheduled version, process a batch, push feedback.
// Used by the dedicated Engine.Run path (paper Fig. 8's k operator
// instances); the Pool drives the same slots cooperatively via slotStep.
//
// A slot whose index is at or past the active pool size is parked: the
// goroutine blocks on its wake channel — zero wake-ups, zero CPU — until
// a policy decision grows the pool back over it (or the run ends).
func (s *shardState) slotLoop(i int, stop chan struct{}) {
	sl := &s.slots[i]
	idle := 0
	for {
		select {
		case <-stop:
			return
		default:
		}
		if int(s.activeSlots.Load()) <= i {
			select {
			case <-sl.wake:
			case <-stop:
				return
			}
			idle = 0
			continue
		}
		sl.loops.Add(1)
		if s.slotStep(i) {
			idle = 0
			continue
		}
		idle++
		if idle < 64 {
			runtime.Gosched()
		} else {
			time.Sleep(20 * time.Microsecond)
		}
	}
}

// slotStep processes one batch of slot i's assigned window version, if any
// and if no other worker currently owns the slot. It reports whether any
// progress was made.
func (s *shardState) slotStep(i int) bool {
	sl := &s.slots[i]
	wv := sl.wv.Load()
	if wv == nil || wv.Dropped() || wv.Finished() {
		return false
	}
	if !sl.busy.CompareAndSwap(false, true) {
		return false
	}
	worked := s.processBatch(sl.w, wv)
	sl.busy.Store(false)
	return worked
}

// processBatch processes up to BatchSize events of wv and forwards the
// accumulated feedback. Feedback is pushed while still holding the
// version's mutex, which keeps the queue FIFO per window version even if
// the version later migrates to another slot.
func (s *shardState) processBatch(w *worker, wv *deptree.WindowVersion) bool {
	wv.Mu.Lock()
	defer wv.Mu.Unlock()
	if wv.Dropped() || wv.Finished() {
		return false
	}
	w.msgs = w.msgs[:0]
	worked := w.processSpan(wv, s.prog.cfg.BatchSize)
	w.flushStats(wv)
	s.fq.push(w.msgs)
	return worked
}

// worker holds the per-slot scratch state of event processing. It is used
// by operator slots and by the splitter's inline reprocessing. All its
// buffers are reused across batches, so steady-state processing does not
// allocate.
type worker struct {
	s        *shardState
	msgs     []msg
	fb       []matcher.Feedback
	runBuf   []matcher.RunInfo
	touched  []int
	dirtyCGs []*deptree.CG
	// stats is a dense (δ_max+1)×(δ_max+1) transition-count matrix,
	// indexed from*statDim+to and reused across batches. δ is bounded by
	// the pattern's minimum match length, so the matrix is small.
	stats    []uint32
	statDim  int
	statsSet int // number of nonzero cells
}

func newWorker(s *shardState) *worker {
	dim := s.prog.compiled.MinLength() + 1
	return &worker{s: s, stats: make([]uint32, dim*dim), statDim: dim}
}

// stat records one Markov transition observation.
func (w *worker) stat(from, to int) {
	if from < 0 || to < 0 || from >= w.statDim || to >= w.statDim {
		return
	}
	i := from*w.statDim + to
	if w.stats[i] == 0 {
		w.statsSet++
	}
	w.stats[i]++
}

// flushStats converts accumulated transition counts into a feedback
// message. Only called for stats-eligible (validated) versions' spans.
// Entry slices come from a pool; the splitter returns them after
// applying the message.
func (w *worker) flushStats(wv *deptree.WindowVersion) {
	if w.statsSet == 0 {
		return
	}
	entries := newStatEntries()
	for from := 0; from < w.statDim; from++ {
		row := w.stats[from*w.statDim : (from+1)*w.statDim]
		for to, c := range row {
			if c != 0 {
				entries = append(entries, statEntry{from: from, to: to, count: int(c)})
				row[to] = 0
			}
		}
	}
	w.statsSet = 0
	w.msgs = append(w.msgs, msg{kind: msgStats, stats: entries})
}

// processSpan processes up to max events of wv. The caller must hold
// wv.Mu. It returns whether any progress was made (events processed, the
// version finished, or a rollback happened).
func (w *worker) processSpan(wv *deptree.WindowVersion, max int) bool {
	s := w.s
	win := wv.Win
	if wv.State == nil {
		wv.State = s.prog.compiled.NewState()
		wv.SetPos(win.StartSeq)
	}
	arenaLen := s.ar.Len()
	end := win.EndSeq()
	limit := arenaLen
	if end < limit {
		limit = end
	}
	pos := wv.Pos()
	dur := int64(s.prog.query.Window.Duration)

	processed := 0
	checkEvery := s.prog.cfg.ConsistencyCheckEvery
	ckptEvery := uint64(0)
	if ce := s.prog.cfg.CheckpointEvery; ce > 0 {
		ckptEvery = uint64(ce)
	}
	stamped := s.prog.stamped
	seq0 := stamped && s.seq0.Load()
	typeFilter := s.prog.typeFilter
	for pos < limit && processed < max {
		seq := pos
		ev := s.ar.Get(seq)
		if stamped && (ev.Seq != seq || (seq == 0 && !seq0)) {
			// Gap left by the intake prefilter: the raw-stream position was
			// dropped before ingest and reads back as a zero event. Skip it
			// entirely — it must not reach the duration check (its TS is
			// zero) nor the matcher.
			processed++
			pos++
			wv.SetPos(pos)
			continue
		}
		// Window extents are raw-stream ranges: the duration boundary is
		// checked before any consumption filtering.
		if s.prog.durWindow && end == window.UnknownEnd && ev.TS-win.StartTS >= dur {
			w.finish(wv)
			w.flushMetrics(processed)
			return true
		}
		processed++
		if wv.State.Stopped() {
			// StopAfterMatch: detection is over; only the window boundary
			// matters. Count windows can skip ahead.
			if !s.prog.durWindow || end != window.UnknownEnd {
				pos = limit
				wv.SetPos(pos)
				break
			}
			pos++
			wv.SetPos(pos)
			continue
		}
		if typeFilter && !s.prog.plan.RelevantType(ev.Type) {
			// Every step is typed and no step accepts this event's type: it
			// can never bind, be consumed, or join a group. Skipping it only
			// forgoes the matcher's self-loop statistics, which influence
			// scheduling but never output.
			pos++
			wv.SetPos(pos)
			continue
		}
		if s.consumed.Contains(seq) {
			// Finally consumed by an earlier window.
			pos++
			wv.SetPos(pos)
			continue
		}
		if containsSorted(wv.LocalConsumed, seq) {
			// Consumed by this version's own earlier match.
			pos++
			wv.SetPos(pos)
			continue
		}
		if suppressedBy(wv, seq) {
			// Speculatively suppressed: a group on the version's
			// completion path currently holds this event.
			wv.Skipped = append(wv.Skipped, seq)
			pos++
			wv.SetPos(pos)
			continue
		}

		w.fb = wv.State.Process(ev, w.fb[:0])
		influenced := w.applyFeedback(wv, ev)
		if influenced {
			wv.Used = append(wv.Used, seq)
		}
		if wv.StatsEligible {
			w.recordSelfLoops(wv, ev)
		}
		pos++
		wv.SetPos(pos)

		if checkEvery > 0 && processed%checkEvery == 0 {
			if !w.consistencyCheck(wv) {
				w.rollback(wv)
				w.flushMetrics(processed)
				return true
			}
		}
		// Periodic checkpoint: a deep-copy snapshot of the matcher state
		// and consumption bookkeeping, from which later forks of this
		// window (and this version's own rollbacks) replay only the
		// suffix. Validated versions are skipped — no new version of a
		// root window is ever created. Positions at or past the window
		// end are skipped too: a version seeded there would never be
		// eligible for scheduling and could not run its window-end logic.
		if ckptEvery > 0 && pos < end && pos-wv.LastCkpt >= ckptEvery && !wv.Validated() {
			w.checkpoint(wv)
		}
	}

	finished := false
	if end != window.UnknownEnd && pos >= end {
		finished = true
	} else if s.inputDone.Load() && pos >= s.ar.Len() {
		// Stream ended; no further events can arrive for this window.
		finished = true
	}
	if finished {
		// One last consistency check before finalizing the version: late
		// membership updates of suppressed groups are cheaper to catch
		// here than at the root's final gate.
		if !w.consistencyCheck(wv) {
			w.rollback(wv)
			w.flushMetrics(processed)
			return true
		}
		w.finish(wv)
		w.flushMetrics(processed)
		return true
	}
	w.flushMetrics(processed)
	return processed > 0
}

func (w *worker) flushMetrics(processed int) {
	if processed == 0 {
		return
	}
	w.s.metrics.add(func(m *Metrics) { m.EventsProcessed += uint64(processed) })
}

// finish runs the window-end logic: all open partial matches are abandoned
// (their groups resolve) and the version is marked finished.
func (w *worker) finish(wv *deptree.WindowVersion) {
	w.fb = wv.State.WindowEnd(w.fb[:0])
	w.applyFeedback(wv, nil)
	wv.MarkFinished()
}

// applyFeedback folds matcher feedback into consumption groups, buffered
// outputs and feedback messages. It reports whether ev influenced the
// matcher state (and therefore matters for consumption consistency).
func (w *worker) applyFeedback(wv *deptree.WindowVersion, ev *event.Event) bool {
	s := w.s
	influenced := false
	eligible := wv.StatsEligible
	w.touched = w.touched[:0]
	for i := 0; i < len(w.fb); i++ {
		f := w.fb[i]
		w.touched = append(w.touched, f.Run)
		switch f.Kind {
		case matcher.RunStarted:
			cg := deptree.NewCG(s.cgSeq.Add(1), wv, f.Run, f.Delta)
			for _, c := range f.Carry {
				cg.Append(c.Seq)
			}
			if f.Consumable && f.Event != nil {
				cg.Append(f.Event.Seq)
			}
			w.dirtyCGs = append(w.dirtyCGs, cg)
			wv.RunCGs[f.Run] = cg
			w.msgs = append(w.msgs, msg{kind: msgCGCreated, wv: wv, cg: cg})
			if eligible {
				w.stat(f.PrevDelta, f.Delta)
			}
			influenced = true

		case matcher.EventBound:
			if cg := wv.RunCGs[f.Run]; cg != nil {
				if f.Consumable && f.Event != nil {
					cg.Append(f.Event.Seq)
					w.dirtyCGs = append(w.dirtyCGs, cg)
				}
				cg.SetDelta(f.Delta)
			}
			if eligible {
				w.stat(f.PrevDelta, f.Delta)
			}
			influenced = true

		case matcher.RunCompleted:
			cg := wv.RunCGs[f.Run]
			delete(wv.RunCGs, f.Run)
			ce := buildComplex(s.prog.query.Name, wv.Win.ID, f.Match)
			wv.Buffered = append(wv.Buffered, ce)
			if cg != nil {
				cg.SetDelta(0)
				if cg.Resolve(deptree.CGCompleted) {
					w.msgs = append(w.msgs, msg{kind: msgCGResolved, cg: cg})
				}
			}
			if len(ce.Consumed) > 0 {
				wv.LocalConsumed = mergeSorted(wv.LocalConsumed, ce.Consumed)
				// Same-window consumption: sibling partial matches using a
				// consumed event are abandoned (their feedback is appended
				// and handled by this very loop).
				w.fb = wv.State.AbandonRunsUsing(ce.Consumed, w.fb)
			}
			if eligible {
				w.stat(f.PrevDelta, 0)
			}
			influenced = true

		case matcher.RunAbandoned:
			cg := wv.RunCGs[f.Run]
			delete(wv.RunCGs, f.Run)
			if cg != nil {
				if cg.Resolve(deptree.CGAbandoned) {
					w.msgs = append(w.msgs, msg{kind: msgCGResolved, cg: cg})
				}
			}
			if ev != nil && f.Event == ev {
				influenced = true // negation trigger
			}
		}
	}
	// Snapshot publication is batched: one new snapshot per touched group
	// per feedback application instead of one per added event.
	for i, cg := range w.dirtyCGs {
		cg.Publish()
		w.dirtyCGs[i] = nil
	}
	w.dirtyCGs = w.dirtyCGs[:0]
	return influenced
}

// recordSelfLoops records δ→δ transitions for open runs the event did not
// touch: the paper's Markov statistics observe every processed event.
func (w *worker) recordSelfLoops(wv *deptree.WindowVersion, ev *event.Event) {
	w.runBuf = wv.State.Runs(w.runBuf[:0])
	for _, ri := range w.runBuf {
		seen := false
		for _, id := range w.touched {
			if id == ri.ID {
				seen = true
				break
			}
		}
		if !seen {
			w.stat(ri.Delta, ri.Delta)
		}
	}
}

// consistencyCheck implements the periodic check of paper Fig. 8 (lines
// 31-45): if a suppressed group's membership changed and this version has
// processed one of its events, the version is inconsistent.
func (w *worker) consistencyCheck(wv *deptree.WindowVersion) bool {
	for i, cg := range wv.Suppressed {
		snap := cg.Snapshot()
		if snap.Version == wv.LastChecked[i] {
			continue
		}
		wv.LastChecked[i] = snap.Version
		if intersectsSorted(wv.Used, snap.Seqs) {
			return false
		}
	}
	return true
}

// checkpoint records a snapshot of wv's current processing prefix in the
// shard's checkpoint store. The caller must hold wv.Mu. Suppression-free
// checkpoints are additionally offered to the durability layer (deep
// copies, so the persister never reads arena memory that a later root
// pop may recycle).
func (w *worker) checkpoint(wv *deptree.WindowVersion) {
	wv.LastCkpt = wv.Pos()
	ck := wv.Capture()
	w.s.ckpts.record(ck)
	w.s.metrics.add(func(m *Metrics) { m.Checkpoints++ })
	if p := w.s.persist; p != nil && len(ck.Sup) == 0 {
		p.offerCheckpoint(ck)
	}
}

// rollback resets the version (paper: "the state of the window version
// is rolled back to the start") — but only as far as necessary: when a
// checkpoint of a still-consistent prefix exists, the version restarts
// from it and replays only the suffix. Its own consumption groups are
// discarded either way; the splitter rebuilds the dependent subtree on
// the rollback message.
func (w *worker) rollback(wv *deptree.WindowVersion) {
	s := w.s
	partial := false
	if s.prog.cfg.CheckpointEvery > 0 {
		// Partial rollback: the inconsistency invalidates the suffix past
		// the offending event only; bestFor rejects any checkpoint whose
		// prefix used a now-claimed event, so the deepest surviving one
		// is a sound restart point.
		if ck, vers := s.ckpts.bestFor(wv, s.consumed); ck != nil {
			wv.Restore(ck)
			copy(wv.LastChecked, vers)
			partial = true
		}
	}
	if !partial {
		wv.ResetToStart(s.prog.compiled.NewState())
	}
	wv.Rollbacks++
	clear(w.stats)
	w.statsSet = 0
	w.msgs = append(w.msgs, msg{kind: msgRolledBack, wv: wv})
	s.rollbacks.Add(1)
	if partial {
		s.partialRolls.Add(1)
	}
	s.metrics.add(func(m *Metrics) {
		m.Rollbacks++
		if partial {
			m.PartialRolls++
		}
	})
}

// suppressedBy reports whether seq is currently in any suppressed group of
// wv.
func suppressedBy(wv *deptree.WindowVersion, seq uint64) bool {
	for _, cg := range wv.Suppressed {
		if cg.Contains(seq) {
			return true
		}
	}
	return false
}

// buildComplex converts a matcher match into a complex event.
func buildComplex(query string, winID uint64, m *matcher.Match) event.Complex {
	ce := event.Complex{Query: query, WindowID: winID}
	if m.CompletedAt != nil {
		ce.DetectedAt = m.CompletedAt.Seq
	}
	ce.Constituents = make([]uint64, len(m.Constituents))
	for i, c := range m.Constituents {
		ce.Constituents[i] = c.Seq
	}
	ce.Consumed = make([]uint64, len(m.Consumed))
	for i, c := range m.Consumed {
		ce.Consumed[i] = c.Seq
	}
	return ce
}

// containsSorted reports whether x is in the ascending slice s.
func containsSorted(s []uint64, x uint64) bool {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= x })
	return i < len(s) && s[i] == x
}

// intersectsSorted reports whether two ascending slices share an element.
func intersectsSorted(a, b []uint64) bool {
	if len(a) == 0 || len(b) == 0 {
		return false
	}
	if len(a) > len(b) {
		a, b = b, a
	}
	for _, x := range a {
		i := sort.Search(len(b), func(i int) bool { return b[i] >= x })
		if i < len(b) && b[i] == x {
			return true
		}
	}
	return false
}

// mergeSorted merges ascending b into ascending a, deduplicating. The
// common case — ascending insertion entirely past a's tail — appends in
// place instead of re-copying the whole slice.
func mergeSorted(a, b []uint64) []uint64 {
	if len(b) == 0 {
		return a
	}
	if len(a) == 0 || b[0] > a[len(a)-1] {
		return append(a, b...)
	}
	out := make([]uint64, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}
