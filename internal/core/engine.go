package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/spectrecep/spectre/internal/arena"
	"github.com/spectrecep/spectre/internal/deptree"
	"github.com/spectrecep/spectre/internal/durable"
	"github.com/spectrecep/spectre/internal/event"
	"github.com/spectrecep/spectre/internal/faultinject"
	"github.com/spectrecep/spectre/internal/markov"
	"github.com/spectrecep/spectre/internal/matcher"
	"github.com/spectrecep/spectre/internal/pattern"
	"github.com/spectrecep/spectre/internal/plan"
	"github.com/spectrecep/spectre/internal/sched"
	"github.com/spectrecep/spectre/internal/shed"
	"github.com/spectrecep/spectre/internal/stats"
	"github.com/spectrecep/spectre/internal/stream"
	"github.com/spectrecep/spectre/internal/window"
)

// lagMark is one root-emission latency probe: when the arena reaches
// boundary seq as part of a root pop, the events of the mark's ingest
// batch have been fully validated and emitted.
type lagMark struct {
	seq uint64
	at  time.Time
}

// lagMarkCap bounds the pending lag probes per shard; a backlog beyond
// it drops the newest marks (the oldest ones measure the worst lag,
// which is the signal that matters).
const lagMarkCap = 256

// ErrAlreadyRan is returned when Run is called twice on one engine.
var ErrAlreadyRan = errors.New("core: an Engine can only Run once")

// program is the immutable, compiled form of a query: everything shards of
// the same query share. It is safe for concurrent read access.
type program struct {
	cfg       Config
	query     *pattern.Query
	compiled  *matcher.Compiled
	durWindow bool
	// plan is the cost-based evaluation plan (nil with PlanDisabled).
	// query above is the plan's rewritten deep copy when non-nil.
	plan *plan.Plan
	// stamped: events arrive pre-stamped with their raw-substream
	// sequence number and the intake prefilter may have dropped
	// positions in between (the arena is populated with AppendAt and
	// gaps are skipped as no-ops).
	stamped bool
	// typeFilter: every step is typed, so the matcher-level type skip is
	// legal (plan.RelevantType).
	typeFilter bool
}

// compile validates, plans and compiles q under cfg. The planner runs
// after validation (it relies on the normalized form) and rewrites a
// deep copy, so the caller's query value is never mutated by planning.
func compile(q *pattern.Query, cfg Config) (*program, error) {
	if cfg.Err != nil {
		return nil, cfg.Err
	}
	if err := q.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	cfg.setDefaults()
	var pl *plan.Plan
	if !cfg.PlanDisabled {
		pl = plan.New(q, plan.Options{Reg: cfg.Reg})
		q = pl.Query()
	}
	compiled, err := matcher.Compile(&q.Pattern)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return &program{
		cfg:        cfg,
		query:      q,
		compiled:   compiled,
		durWindow:  q.Window.EndKind == pattern.EndDuration,
		plan:       pl,
		stamped:    (pl != nil && pl.IntakeActive()) || cfg.PreStamped,
		typeFilter: pl != nil && pl.MatcherFilterActive(),
	}, nil
}

// newPredictor builds the completion-probability model for one shard. Each
// shard learns its own Markov model (its substream has its own statistics);
// a user-supplied predictor is shared by all shards and must be safe for
// concurrent use.
func (p *program) newPredictor() (markov.Predictor, error) {
	if p.cfg.Predictor != nil {
		return p.cfg.Predictor, nil
	}
	model, err := markov.New(p.compiled.MinLength(), p.cfg.Markov)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return model, nil
}

// slot is one operator-instance scheduling slot of a shard. The splitter
// publishes the assigned window version through wv; whichever worker
// claims busy processes the next batch with the slot's scratch state.
//
// The slot pool is resizable: only the first activeSlots slots take
// assignments. A dedicated slot goroutine whose index moves past the
// active count parks on wake (zero wake-ups until the pool grows back);
// pool workers simply skip parked slots.
type slot struct {
	wv   atomic.Pointer[deptree.WindowVersion]
	busy atomic.Bool
	w    *worker
	// wake unparks the slot's dedicated goroutine after a pool grow
	// (buffered so a grow that races the park is never lost).
	wake chan struct{}
	// loops counts scheduling-loop iterations while active. White-box
	// tests assert a parked slot's counter freezes.
	loops atomic.Uint64
}

// shardState is the complete per-(query, shard) run state of the SPECTRE
// runtime: the event arena, window manager, dependency tree, feedback
// queue, predictor and the scheduling slots. A shardState is driven either
// by a dedicated splitter goroutine plus k instance goroutines (Engine.Run)
// or cooperatively by a shared worker Pool (Runtime).
type shardState struct {
	prog *program

	ar       *arena.Arena
	consumed *arena.ConsumedSet
	tree     *deptree.Tree
	winMgr   *window.Manager
	pred     markov.Predictor
	ckpts    *ckptStore

	fq    feedbackQueue
	slots []slot // capacity: the config's slot ceiling
	// assigned mirrors the slots for the splitter's bookkeeping (Fig. 7).
	assigned []*deptree.WindowVersion
	// activeSlots is the effective slot-pool size k; slots beyond it are
	// parked. Written by the splitter (policy decisions), read by slot
	// goroutines and pool workers.
	activeSlots atomic.Int32
	// policy is the scheduling policy (splitter only).
	policy sched.Policy
	// rollbacks/partialRolls duplicate the metrics counters as cheap
	// atomics for the per-cycle policy signals (instances write, the
	// splitter reads).
	rollbacks    atomic.Uint64
	partialRolls atomic.Uint64
	lastSelected int   // versions handed out by the previous Select (splitter only)
	freeBuf      []int // schedule() scratch (splitter only)

	cgSeq      atomic.Uint64
	versionSeq uint64 // splitter only
	schedMark  uint64 // splitter only; per-cycle token

	// filteredIn counts events the intake prefilter dropped for this
	// shard (incremented by the feeding side, folded into snapshots).
	filteredIn atomic.Uint64
	// shedIn counts events the load shedder dropped for this shard
	// (incremented by the feeding side, folded into snapshots).
	shedIn atomic.Uint64
	// shed is the shard's load shedder (nil unless Config.Shed). The
	// feeding side calls Offer; the splitter feeds match contributions
	// back through NoteMatch when roots drain.
	shed *shed.Shedder

	// Root-emission lag tracking (splitter only, except the published
	// bits): ingest timestamps one mark per batch; when a root pops,
	// marks at or below the new root boundary become lag samples.
	lagMarks   []lagMark
	lagP50     stats.QuantileEWMA
	lagP99     stats.QuantileEWMA
	lagP50Bits atomic.Uint64 // Float64bits for snapshots off the splitter
	lagP99Bits atomic.Uint64
	// seq0 records that raw position 0 was actually appended in stamped
	// mode. The zero Event at a gap position has Seq == 0, so position 0
	// is the one slot where a Seq match cannot distinguish a real event
	// from a dropped one.
	seq0 atomic.Bool

	inputDone atomic.Bool
	cancelled atomic.Bool // abort requested; the next splitter cycle finishes
	parked    atomic.Bool // durable pause requested; stop without stream-end semantics
	finished  atomic.Bool // run fully processed; done is closed
	splitBusy atomic.Bool // cooperative-splitter claim (Pool mode)
	done      chan struct{}

	// Durability state (Config.Durable; DESIGN.md §11). persist is nil
	// without a durable store. emitted, suppressRemaining,
	// replayRemaining, resumeFloor and journalBuf are splitter-only;
	// replayTarget and recoveredNextSeq are written while priming (before
	// the shard is attached) and read-only afterwards (Recover barrier,
	// Handle.Recovered).
	persist *persister
	// emitted is the cumulative delivered-match count — the emission
	// watermark committed before each delivery.
	emitted uint64
	// suppressRemaining counts regenerated matches the previous process
	// already delivered; replay skips delivering exactly that many.
	suppressRemaining uint64
	// replayRemaining counts journal events still pending in the intake
	// queue; while positive, ingest appends at the stamped position and
	// does not re-journal.
	replayRemaining int
	// resumeFloor is the recovered cut boundary: the first post-recovery
	// append of an unstamped shard with an empty journal lands here.
	resumeFloor uint64
	// replayTarget is the arena length at which the journal suffix is
	// fully replayed (0 when there is nothing to replay).
	replayTarget uint64
	// recoveredNextSeq is the raw-substream position producers should
	// re-feed from after recovery.
	recoveredNextSeq uint64
	journalBuf       []event.Event

	feed feeder
	emit func(event.Complex)

	metrics metricsBox

	topkBuf []*deptree.WindowVersion
	msgBuf  []msg
	split   *worker // splitter-side worker for inline reprocessing
}

// newShard builds one shard of prog. ctl is the shard's admission-
// arbiter handle on a shared runtime (nil for dedicated engines and
// unarbitrated queries).
func newShard(prog *program, ctl *sched.ShardCtl) (*shardState, error) {
	pred, err := prog.newPredictor()
	if err != nil {
		return nil, err
	}
	ceiling := prog.cfg.Sched.SlotCeiling(prog.cfg.Instances)
	s := &shardState{
		prog:     prog,
		ar:       arena.New(),
		consumed: arena.NewConsumedSet(),
		winMgr:   window.NewManager(prog.query.Window),
		pred:     pred,
		ckpts:    newCkptStore(),
		slots:    make([]slot, ceiling),
		assigned: make([]*deptree.WindowVersion, ceiling),
		done:     make(chan struct{}),
	}
	s.lagP50.Q = 0.5
	s.lagP99.Q = 0.99
	for i := range s.slots {
		s.slots[i].w = newWorker(s)
		s.slots[i].wake = make(chan struct{}, 1)
	}
	if prog.cfg.SchedFactory != nil {
		s.policy = prog.cfg.SchedFactory()
	} else {
		// The shard's own Config copy carries its arbiter handle; prog is
		// shared across shards and stays immutable.
		sc := prog.cfg.Sched
		sc.Ctl = ctl
		s.policy = sc.New(prog.cfg.Instances, prog.cfg.MaxSpeculation)
	}
	s.activeSlots.Store(int32(prog.cfg.Sched.InitialSlots(prog.cfg.Instances)))
	cur, spec := int(s.activeSlots.Load()), prog.cfg.MaxSpeculation
	s.metrics.add(func(m *Metrics) {
		m.CurSlots = cur
		m.CurSpeculation = spec
	})
	s.tree = deptree.NewTree(s.newVersion)
	s.tree.CapSize = prog.cfg.MaxSpeculation
	s.tree.OnDrop = func(wv *deptree.WindowVersion) {
		s.metrics.add(func(m *Metrics) { m.VersionsDropped++ })
	}
	s.split = newWorker(s)
	return s, nil
}

// begin wires the shard's intake and output before it is driven.
func (s *shardState) begin(feed feeder, emit func(event.Complex)) {
	if emit == nil {
		emit = func(event.Complex) {}
	}
	s.feed = feed
	s.emit = emit
}

// newVersion is the dependency tree's window-version factory. When
// checkpointing is enabled, the fresh version is seeded from the deepest
// valid checkpoint of an earlier version of the same window — the
// paper's "modified copy" made incremental: the fork replays only the
// suffix past the checkpoint instead of the whole window.
func (s *shardState) newVersion(win *window.Window, suppressed []*deptree.CG) *deptree.WindowVersion {
	s.versionSeq++
	wv := deptree.NewWindowVersion(s.versionSeq, win, suppressed)
	wv.SetPos(win.StartSeq)
	wv.LastCkpt = win.StartSeq
	if s.prog.cfg.CheckpointEvery > 0 {
		if ck, vers := s.ckpts.bestFor(wv, s.consumed); ck != nil {
			wv.Restore(ck)
			copy(wv.LastChecked, vers)
			s.metrics.add(func(m *Metrics) {
				m.VersionsSeeded++
				m.SeededEvents += ck.Pos - win.StartSeq
			})
		}
	}
	s.metrics.add(func(m *Metrics) { m.VersionsCreated++ })
	return wv
}

// splitLoop drives the splitter to completion on the calling goroutine:
// ingest → apply feedback → advance/emit → schedule, repeated until the
// stream is drained (paper §3.2.2) or ctx is done. Used by the dedicated
// Engine.Run path.
func (s *shardState) splitLoop(ctx context.Context) {
	idle := 0
	for {
		if ctx.Err() != nil {
			s.cancel()
		}
		worked := s.splitCycle()
		if s.runComplete() {
			s.finishRun()
			return
		}
		if worked {
			idle = 0
			continue
		}
		idle++
		if idle < 32 {
			runtime.Gosched()
		} else {
			time.Sleep(20 * time.Microsecond)
		}
	}
}

// splitterStep runs one cooperative splitter cycle if no other worker is
// inside it. It reports whether any progress was made. Pool workers call
// this; the claim keeps the splitter's single-threaded state safe.
func (s *shardState) splitterStep() bool {
	if s.finished.Load() {
		return false
	}
	if !s.splitBusy.CompareAndSwap(false, true) {
		return false
	}
	worked := s.splitCycle()
	if s.runComplete() {
		s.finishRun()
		worked = true
	}
	s.splitBusy.Store(false)
	return worked
}

// splitCycle is one splitter maintenance+scheduling cycle.
func (s *shardState) splitCycle() bool {
	if s.cancelled.Load() {
		// Aborted: emit nothing more; the caller's runComplete check
		// finishes the run.
		return false
	}
	worked := false

	if !s.inputDone.Load() && (s.tree.Size() < s.prog.cfg.MaxTreeSize || s.rootNeedsIngest()) {
		if s.ingest() > 0 {
			worked = true
		}
	}

	s.msgBuf = s.fq.drain(s.msgBuf[:0])
	if len(s.msgBuf) > 0 {
		worked = true
	}
	for i := range s.msgBuf {
		s.apply(&s.msgBuf[i])
	}

	if s.advanceRoots() {
		worked = true
	}

	s.schedule()
	return worked
}

// runComplete reports whether the shard has fully processed its stream —
// or was cancelled, in which case the remaining tree state is abandoned.
func (s *shardState) runComplete() bool {
	if s.cancelled.Load() || s.parked.Load() {
		return true
	}
	return s.inputDone.Load() && s.tree.Empty() && s.fq.empty()
}

// cancel requests an abort: the next splitter cycle (dedicated or
// pool-driven) observes it, skips the remaining work and finishes the
// run. Pending and future intake is discarded. Idempotent.
func (s *shardState) cancel() {
	if s.cancelled.CompareAndSwap(false, true) {
		if q, ok := s.feed.(*shardQueue); ok {
			q.discard()
		}
		s.inputDone.Store(true)
	}
}

// park pauses a durable shard without stream-end semantics: unlike a
// closed handle (end of stream — in-flight windows are driven to
// completion at the current stream length and truncated there), parking
// stops the splitter after its current cycle and leaves the in-flight
// windows to the WAL. Recovery replays the journal and re-forms them, so
// a shutdown/restart pair is invisible in the delivered stream. Events
// still queued but not yet journaled are dropped — the producer re-feeds
// them from the recovered position. Idempotent.
func (s *shardState) park() {
	if s.parked.CompareAndSwap(false, true) {
		if q, ok := s.feed.(*shardQueue); ok {
			q.discard()
		}
		s.inputDone.Store(true)
	}
}

// finishRun finalizes metrics, clears the scheduling slots and publishes
// completion. Called exactly once, by whoever drives the final splitter
// cycle.
func (s *shardState) finishRun() {
	s.metrics.add(func(m *Metrics) { m.MaxTreeSize = s.tree.MaxSize() })
	for i := range s.slots {
		s.slots[i].wv.Store(nil)
	}
	s.ckpts.clear()
	if s.persist != nil {
		// Drain, final-sync and close the WAL before publishing
		// completion: <-done then implies the durable state is final and
		// the shard log is reopenable.
		s.persist.shutdown()
	}
	s.finished.Store(true)
	close(s.done)
}

// rootNeedsIngest reports whether the root window is still waiting for
// events, in which case ingestion must continue regardless of tree-size
// backpressure (liveness).
func (s *shardState) rootNeedsIngest() bool {
	root := s.tree.Root()
	if root == nil {
		return true
	}
	end := root.WV.Win.EndSeq()
	return end == window.UnknownEnd || s.ar.Len() < end
}

// ingest appends up to IngestBatch pending events to the arena, forming
// windows. Events become visible to the operator slots one by one, as
// they arrive. At end of stream it finalizes the window manager.
func (s *shardState) ingest() int {
	n := 0
	for ; n < s.prog.cfg.IngestBatch; n++ {
		ev, ok, done := s.feed.next()
		if !ok {
			if done {
				s.winMgr.Finish(s.ar.Len())
				s.inputDone.Store(true)
			}
			break
		}
		var seq uint64
		replaying := s.replayRemaining > 0
		switch {
		case replaying:
			// Journal replay: recovered events carry their original
			// position (stamped or not) and are already in the WAL.
			s.replayRemaining--
			if ev.Seq == 0 {
				s.seq0.Store(true)
			}
			seq = s.ar.AppendAt(ev)
		case s.prog.stamped:
			// The feed layer stamped ev.Seq with its raw-substream
			// position; dropped positions in between stay as gaps.
			if ev.Seq == 0 {
				s.seq0.Store(true)
			}
			seq = s.ar.AppendAt(ev)
		default:
			if fl := s.resumeFloor; fl > s.ar.Len() {
				// Recovered shard whose journal suffix was empty (or
				// lost): resume appending at the cut boundary so new
				// events continue the recovered numbering.
				ev.Seq = fl
				seq = s.ar.AppendAt(ev)
			} else {
				seq = s.ar.Append(ev)
			}
		}
		stored := s.ar.Get(seq)
		if s.persist != nil && !replaying {
			s.journalBuf = append(s.journalBuf, *stored)
		}
		opened, _ := s.winMgr.Observe(stored)
		for _, w := range opened {
			s.tree.NewWindow(w)
			s.metrics.add(func(m *Metrics) { m.WindowsOpened++ })
		}
	}
	if n > 0 {
		// One latency probe per ingest batch: when the arena boundary of a
		// future root pop reaches this batch, its events have been fully
		// validated and emitted.
		if len(s.lagMarks) < lagMarkCap {
			s.lagMarks = append(s.lagMarks, lagMark{seq: s.ar.Len(), at: time.Now()})
		}
		s.metrics.add(func(m *Metrics) { m.EventsIngested += uint64(n) })
	}
	if s.persist != nil && len(s.journalBuf) > 0 {
		// One WAL batch per ingest batch, after the arena writes: the
		// persister copies the buffer, so it is reusable next cycle.
		s.persist.appendEvents(s.journalBuf)
		s.journalBuf = s.journalBuf[:0]
	}
	return n
}

// apply folds one feedback message into the dependency tree.
func (s *shardState) apply(m *msg) {
	switch m.kind {
	case msgCGCreated:
		s.tree.CGCreated(m.cg)
		s.metrics.add(func(mm *Metrics) { mm.CGsCreated++ })
	case msgCGResolved:
		out := m.cg.Outcome()
		s.tree.CGResolved(m.cg)
		s.metrics.add(func(mm *Metrics) {
			if out == deptree.CGCompleted {
				mm.CGsCompleted++
			} else {
				mm.CGsAbandoned++
			}
		})
	case msgRolledBack:
		s.tree.RebuildBelow(m.wv)
	case msgStats:
		for _, st := range m.stats {
			s.pred.RecordTransitionN(st.from, st.to, st.count)
		}
		putStatEntries(m.stats)
		m.stats = nil
	}
}

// advanceRoots validates, drains and pops finished roots (in-order
// emission). It returns whether any progress was made.
func (s *shardState) advanceRoots() bool {
	changed := false
	for {
		root := s.tree.Root()
		if root == nil {
			return changed
		}
		wv := root.WV
		if !wv.Validated() {
			s.validate(wv)
			changed = true
		}
		if s.drainOutputs(wv) {
			changed = true
		}
		if !wv.Finished() {
			return changed
		}
		child := root.Child()
		if child != nil && !child.IsWV() {
			// The root's own consumption group is still unresolved; its
			// resolution message is in flight (window end abandons every
			// open group, so it will arrive).
			return changed
		}
		s.drainOutputs(wv)
		s.tree.PopRoot()
		// The window is fully resolved: no further versions of it can be
		// created, so its checkpoints are dead weight.
		s.ckpts.drop(wv.Win.ID)
		if s.persist != nil {
			s.persistCut()
		}
		s.releaseArena()
		s.notifyAdvance()
		changed = true
	}
}

// persistCut records the post-pop recovery cut (splitter only): the new
// root boundary (everything below it is final and will never be
// reprocessed), the next window id, the emission watermark at the pop,
// and the still-relevant consumption marks at or past the boundary. On
// recovery the journal below the boundary is compacted away and replay
// starts at the cut.
func (s *shardState) persistCut() {
	boundary := s.ar.Len()
	nextWin := s.winMgr.Opened()
	if root := s.tree.Root(); root != nil {
		boundary = root.WV.Win.StartSeq
		nextWin = root.WV.Win.ID
	}
	s.persist.appendCut(&durable.CutRecord{
		Boundary:     boundary,
		NextWindowID: nextWin,
		Watermark:    s.emitted,
		Consumed:     s.consumed.AppendRuns(boundary, s.ar.Len(), nil),
	})
}

// notifyAdvance reports the post-pop boundary to Config.OnAdvance: every
// future emission of this shard detects at or past it. The durable path
// routes the call through the persister FIFO so it lands after the
// deliveries enqueued by this pop (emit runs on the persister goroutine
// there); the non-durable path already delivered synchronously, so the
// callback fires in place. A late progress signal is always safe — it only
// under-reports how far the shard has advanced — but an early one could
// let a downstream merge release another shard's match ahead of one still
// in flight here, so the ordering is load-bearing.
func (s *shardState) notifyAdvance() {
	fn := s.prog.cfg.OnAdvance
	if fn == nil {
		return
	}
	boundary := s.ar.Len()
	if root := s.tree.Root(); root != nil {
		boundary = root.WV.Win.StartSeq
	}
	if p := s.persist; p != nil {
		p.enqueueAdvance(func() { fn(boundary) })
		return
	}
	fn(boundary)
}

// releaseArena recycles arena chunks no run state can reference anymore.
// After a root pop, every live window version starts at or after the new
// root's start sequence (windows open — and therefore pop — in stream
// order), so chunks wholly below that boundary are unreachable: workers
// only read positions inside their version's window span, checkpoints of
// the popped window were just dropped, and emitted complex events carry
// sequence numbers, not arena pointers. With an empty tree everything
// appended so far is released; windows opened later start at future
// positions.
func (s *shardState) releaseArena() {
	boundary := s.ar.Len()
	if root := s.tree.Root(); root != nil {
		boundary = root.WV.Win.StartSeq
	}
	s.observeLag(boundary)
	s.ar.ReleaseBefore(boundary)
}

// observeLag resolves the pending latency probes at or below boundary:
// everything ingested before that position has now cleared validation
// and emission, so now-minus-ingest is a root-emission lag sample.
// Splitter only.
func (s *shardState) observeLag(boundary uint64) {
	n := 0
	for n < len(s.lagMarks) && s.lagMarks[n].seq <= boundary {
		n++
	}
	if n == 0 {
		return
	}
	now := time.Now()
	for i := 0; i < n; i++ {
		lag := now.Sub(s.lagMarks[i].at).Seconds()
		s.lagP50.Observe(lag)
		s.lagP99.Observe(lag)
	}
	s.lagMarks = s.lagMarks[:copy(s.lagMarks, s.lagMarks[n:])]
	s.lagP50Bits.Store(math.Float64bits(s.lagP50.Value()))
	s.lagP99Bits.Store(math.Float64bits(s.lagP99.Value()))
}

// validate is the final gate (DESIGN.md §4.2): when a version becomes
// root, every event it used must be finally unconsumed and every event it
// speculatively skipped must be finally consumed. On violation the version
// is reprocessed deterministically. Either way the version leaves this
// function validated, so everything it emits afterwards is final.
func (s *shardState) validate(wv *deptree.WindowVersion) {
	wv.Mu.Lock()
	defer wv.Mu.Unlock()
	if wv.Validated() {
		return
	}
	ok := true
	for _, u := range wv.Used {
		if s.consumed.Contains(u) {
			ok = false
			break
		}
	}
	if ok {
		for _, sk := range wv.Skipped {
			if !s.consumed.Contains(sk) {
				ok = false
				break
			}
		}
	}
	if !ok {
		s.metrics.add(func(m *Metrics) { m.GateReprocessed++ })
		s.reprocessInline(wv)
	}
	wv.StatsEligible = true
	wv.MarkValidated()
}

// reprocessInline deterministically reprocesses wv (Mu held by caller):
// its dependents are rebuilt, its state reset, and the whole available
// window span is processed with suppression from the final consumed set
// only. Tree updates are applied synchronously.
func (s *shardState) reprocessInline(wv *deptree.WindowVersion) {
	s.tree.RebuildBelow(wv)
	wv.ResetToStart(s.prog.compiled.NewState())
	wv.Rollbacks++

	w := s.split
	for {
		w.msgs = w.msgs[:0]
		progressed := w.processSpan(wv, 1<<20)
		for i := range w.msgs {
			s.apply(&w.msgs[i])
		}
		if !progressed || wv.Finished() {
			return
		}
	}
}

// drainOutputs emits the validated root's buffered complex events and
// finalizes their consumption. Emission happens outside the version lock.
func (s *shardState) drainOutputs(wv *deptree.WindowVersion) bool {
	if !wv.Validated() {
		return false
	}
	wv.Mu.Lock()
	if len(wv.Buffered) == 0 {
		wv.Mu.Unlock()
		return false
	}
	out := make([]event.Complex, len(wv.Buffered))
	copy(out, wv.Buffered)
	wv.Buffered = wv.Buffered[:0]
	wv.Mu.Unlock()

	consumedCount := 0
	for i := range out {
		for _, seq := range out[i].Consumed {
			if !s.consumed.Contains(seq) {
				s.consumed.Mark(seq)
				consumedCount++
			}
		}
	}
	s.metrics.add(func(m *Metrics) {
		m.Matches += uint64(len(out))
		m.EventsConsumed += uint64(consumedCount)
	})
	if s.shed != nil {
		// Feed the match back to the utility estimator: constituents are
		// arena sequence numbers, and the arena still holds them — release
		// happens only after the root pops.
		for i := range out {
			for _, seq := range out[i].Constituents {
				s.shed.NoteMatch(s.ar.Get(seq).Type)
			}
		}
	}
	// Commit-before-deliver (exactly-once, DESIGN.md §11): advance the
	// emission watermark over this batch and make it durable before any
	// match of the batch reaches the sink. A crash after the commit but
	// before (or during) delivery re-delivers nothing: recovery
	// regenerates the batch and suppresses the first Watermark−CutWatermark
	// matches. The commit (and the delivery it gates) runs on the
	// persister goroutine — the splitter never waits for the fsync.
	if p := s.persist; p != nil {
		s.emitted += uint64(len(out))
		deliver := out
		suppressed := 0
		for len(deliver) > 0 && s.suppressRemaining > 0 {
			// Replay regenerated a match the previous process already
			// delivered; consumption above still counts, delivery does
			// not.
			s.suppressRemaining--
			suppressed++
			deliver = deliver[1:]
		}
		if suppressed > 0 {
			s.metrics.add(func(m *Metrics) { m.SuppressedMatches += uint64(suppressed) })
		}
		p.commitAndDeliver(s.emitted, deliver, s.emit)
		return true
	}
	if faultinject.Killed() {
		// Fault-injection builds only (constant false otherwise): the
		// simulated process died, so this batch's sink callbacks never
		// run. The durable path samples the flag on the persister
		// goroutine instead, between commit and delivery.
		return true
	}
	for i := range out {
		s.emit(out[i])
	}
	return true
}

// schedule is one control-plane round: feed the cycle's signals to the
// policy, apply its sizing decision (resizing the slot pool and the
// speculation budget), then let the policy pick the window versions for
// the active slots and assign the difference (paper Fig. 7:
// already-scheduled versions stay put).
func (s *shardState) schedule() {
	active := int(s.activeSlots.Load())
	busy := 0
	for i := 0; i < active; i++ {
		if s.assigned[i] != nil {
			busy++
		}
	}
	dec := s.policy.Tune(sched.Signals{
		SlotsActive:  active,
		SlotsBusy:    busy,
		Selected:     s.lastSelected,
		QueueDepth:   s.feed.depth(),
		QueueCap:     s.prog.cfg.QueueCap,
		TreeSize:     s.tree.Size(),
		SpecBudget:   s.tree.CapSize,
		Rollbacks:    s.rollbacks.Load(),
		PartialRolls: s.partialRolls.Load(),
		EmitLagP50:   s.lagP50.Value(),
		EmitLagP99:   s.lagP99.Value(),
		InputDone:    s.inputDone.Load(),
	})
	s.applyDecision(dec)
	// busy was measured against the pre-resize pool; keep the
	// utilization counters on that same instant so busy/active stays a
	// true fraction even on resize cycles.
	sigActive := active
	active = int(s.activeSlots.Load())

	arenaLen := s.ar.Len()
	avgSize := s.winMgr.AvgSize()
	inputDone := s.inputDone.Load()

	probOf := func(cg *deptree.CG) float64 {
		switch cg.Outcome() {
		case deptree.CGCompleted:
			return 1
		case deptree.CGAbandoned:
			return 0
		}
		owner := cg.Owner
		n := int(avgSize) - int(owner.Pos()-owner.Win.StartSeq)
		return s.pred.CompletionProbability(cg.Delta(), n)
	}
	eligible := func(wv *deptree.WindowVersion) bool {
		if wv.Finished() || wv.Dropped() {
			return false
		}
		pos := wv.Pos()
		end := wv.Win.EndSeq()
		limit := arenaLen
		if end < limit {
			limit = end
		}
		if pos < limit {
			return true
		}
		// A version parked exactly at its resolved window end has all
		// its input but still needs one scheduling round to run its
		// window-end logic. Normally processSpan finishes such a version
		// in the same batch that reaches the boundary, but a version
		// released by a slot-pool shrink (its slot withdrawn before the
		// next batch ran) can be stranded there; without this clause the
		// root chain would deadlock.
		if end != window.UnknownEnd && pos >= end {
			return true
		}
		// A version that consumed all available input still needs one
		// last scheduling round at stream end to run its window-end
		// logic.
		return inputDone && pos >= arenaLen
	}

	s.topkBuf = s.policy.Select(
		sched.Env{Tree: s.tree, Prob: probOf, Eligible: eligible},
		active, s.topkBuf[:0])
	s.lastSelected = len(s.topkBuf)
	s.schedMark++

	for _, wv := range s.topkBuf {
		wv.SchedMark = s.schedMark
	}
	// First pass: free slots whose assignment fell out of the top-k (or
	// was dropped/finished), and strip assignments from slots a shrink
	// parked — their versions must be free for re-assignment to an
	// active slot.
	free := s.freeBuf[:0]
	for i, cur := range s.assigned {
		if i >= active {
			if cur != nil {
				cur.SetScheduledOn(-1)
				s.slots[i].wv.Store(nil)
				s.assigned[i] = nil
			}
			continue
		}
		if cur == nil {
			free = append(free, i)
			continue
		}
		if cur.SchedMark != s.schedMark || cur.Dropped() || cur.Finished() {
			cur.SetScheduledOn(-1)
			s.slots[i].wv.Store(nil)
			s.assigned[i] = nil
			free = append(free, i)
		}
	}
	// Second pass: schedule the not-yet-scheduled top-k versions.
	scheduled := 0
	for _, wv := range s.topkBuf {
		if wv.ScheduledOn() >= 0 {
			continue
		}
		if scheduled == len(free) {
			break
		}
		i := free[scheduled]
		s.assigned[i] = wv
		wv.SetScheduledOn(i)
		s.slots[i].wv.Store(wv)
		scheduled++
	}
	s.freeBuf = free[:0]
	// One metrics acquisition per cycle: the cycle counter rides along
	// with the control-plane counters.
	s.metrics.add(func(m *Metrics) {
		m.Cycles++
		m.SchedulesIssued += uint64(scheduled)
		m.SlotCyclesActive += uint64(sigActive)
		m.SlotCyclesBusy += uint64(busy)
	})
}

// applyDecision resizes the slot pool and the speculation budget to the
// policy's decision. Splitter only.
func (s *shardState) applyDecision(dec sched.Decision) {
	resized := false
	// Decisions are clamped, not rejected: a policy asking for more
	// slots than the pool ceiling gets the ceiling.
	n := dec.Slots
	if n < 1 {
		n = 1
	} else if n > len(s.slots) {
		n = len(s.slots)
	}
	if n != int(s.activeSlots.Load()) {
		s.setActiveSlots(n)
		resized = true
	}
	if b := dec.Spec; b >= 1 && b != s.tree.CapSize {
		s.tree.CapSize = b
		resized = true
	}
	if resized {
		cur, spec := int(s.activeSlots.Load()), s.tree.CapSize
		s.metrics.add(func(m *Metrics) {
			m.PolicyResizes++
			m.CurSlots = cur
			m.CurSpeculation = spec
		})
	}
}

// setActiveSlots publishes the new effective pool size and unparks the
// dedicated goroutines of newly activated slots. Splitter only.
func (s *shardState) setActiveSlots(n int) {
	old := int(s.activeSlots.Swap(int32(n)))
	for i := old; i < n; i++ {
		select {
		case s.slots[i].wake <- struct{}{}:
		default: // a wake token is already pending
		}
	}
}

// Engine is the SPECTRE runtime for a single query over a single stream: a
// thin wrapper around one shardState driven by a dedicated splitter
// goroutine (the caller of Run) and k instance goroutines. Multi-query,
// key-partitioned deployments use Runtime instead, which multiplexes many
// shards onto a shared worker pool.
type Engine struct {
	prog  *program
	shard *shardState
	ran   bool
}

// New builds an engine for the query.
func New(q *pattern.Query, cfg Config) (*Engine, error) {
	if cfg.Durable != nil {
		return nil, errors.New("core: durability requires the Runtime path (Submit)")
	}
	prog, err := compile(q, cfg)
	if err != nil {
		return nil, err
	}
	s, err := newShard(prog, nil)
	if err != nil {
		return nil, err
	}
	return &Engine{prog: prog, shard: s}, nil
}

// Run ingests the source, processes it with k operator instances and
// invokes emit for every complex event, in canonical order (window order;
// detection order within a window — exactly the sequential-engine order).
// emit must not call back into the engine. Run returns after the stream is
// fully processed, or with ctx.Err() as soon as ctx is done (within one
// splitter cycle; already-emitted output stands, the rest is discarded).
// An engine runs once.
func (e *Engine) Run(ctx context.Context, src stream.Source, emit func(event.Complex)) error {
	if e.ran {
		return ErrAlreadyRan
	}
	// A context that is already done rejects the call without consuming
	// the engine's single run.
	if err := ctx.Err(); err != nil {
		return err
	}
	e.ran = true
	s := e.shard
	var feed feeder = &sourceFeeder{ctx: ctx, src: src}
	if s.prog.stamped && !s.prog.cfg.PreStamped {
		// Intake prefilter: stamp raw positions, drop irrelevant events
		// before they reach the arena. Pre-stamped input skips this — an
		// upstream stage already filtered and spent the positions.
		feed = &filterFeeder{inner: feed, pl: s.prog.plan, shard: s}
	}
	s.begin(feed, emit)

	// One goroutine per slot up to the pool ceiling; slots beyond the
	// current active count park until a policy decision grows the pool.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := range s.slots {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s.slotLoop(i, stop)
		}(i)
	}
	s.splitLoop(ctx)
	close(stop)
	wg.Wait()
	if s.cancelled.Load() {
		return ctx.Err()
	}
	return nil
}

// MetricsSnapshot returns a copy of the runtime counters.
func (e *Engine) MetricsSnapshot() Metrics { return e.shard.metricsSnapshot() }

// Plan returns the engine's evaluation plan, or nil when planning is
// disabled.
func (e *Engine) Plan() *plan.Plan { return e.prog.plan }

// metricsSnapshot folds the shard-level atomic counters into the boxed
// metrics copy.
func (s *shardState) metricsSnapshot() Metrics {
	m := s.metrics.snapshot()
	m.FilteredEvents = s.filteredIn.Load()
	m.ShedEvents = s.shedIn.Load()
	m.EmitLagP50 = math.Float64frombits(s.lagP50Bits.Load())
	m.EmitLagP99 = math.Float64frombits(s.lagP99Bits.Load())
	if p := s.persist; p != nil {
		m.DurableAppends = p.appends.Load()
		m.DurableSyncs = p.syncs.Load()
		m.DurableCkptDropped = p.ckptDropped.Load()
		m.DurableErrors = p.errs.Load()
	}
	return m
}
