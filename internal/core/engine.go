package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/spectrecep/spectre/internal/arena"
	"github.com/spectrecep/spectre/internal/deptree"
	"github.com/spectrecep/spectre/internal/event"
	"github.com/spectrecep/spectre/internal/markov"
	"github.com/spectrecep/spectre/internal/matcher"
	"github.com/spectrecep/spectre/internal/pattern"
	"github.com/spectrecep/spectre/internal/stream"
	"github.com/spectrecep/spectre/internal/window"
)

// ErrAlreadyRan is returned when Run is called twice on one engine.
var ErrAlreadyRan = errors.New("core: an Engine can only Run once")

// program is the immutable, compiled form of a query: everything shards of
// the same query share. It is safe for concurrent read access.
type program struct {
	cfg       Config
	query     *pattern.Query
	compiled  *matcher.Compiled
	durWindow bool
}

// compile validates and compiles q under cfg.
func compile(q *pattern.Query, cfg Config) (*program, error) {
	if cfg.Err != nil {
		return nil, cfg.Err
	}
	if err := q.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	cfg.setDefaults()
	compiled, err := matcher.Compile(&q.Pattern)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return &program{
		cfg:       cfg,
		query:     q,
		compiled:  compiled,
		durWindow: q.Window.EndKind == pattern.EndDuration,
	}, nil
}

// newPredictor builds the completion-probability model for one shard. Each
// shard learns its own Markov model (its substream has its own statistics);
// a user-supplied predictor is shared by all shards and must be safe for
// concurrent use.
func (p *program) newPredictor() (markov.Predictor, error) {
	if p.cfg.Predictor != nil {
		return p.cfg.Predictor, nil
	}
	model, err := markov.New(p.compiled.MinLength(), p.cfg.Markov)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return model, nil
}

// slot is one operator-instance scheduling slot of a shard. The splitter
// publishes the assigned window version through wv; whichever worker
// claims busy processes the next batch with the slot's scratch state.
type slot struct {
	wv   atomic.Pointer[deptree.WindowVersion]
	busy atomic.Bool
	w    *worker
}

// shardState is the complete per-(query, shard) run state of the SPECTRE
// runtime: the event arena, window manager, dependency tree, feedback
// queue, predictor and the scheduling slots. A shardState is driven either
// by a dedicated splitter goroutine plus k instance goroutines (Engine.Run)
// or cooperatively by a shared worker Pool (Runtime).
type shardState struct {
	prog *program

	ar       *arena.Arena
	consumed *arena.ConsumedSet
	tree     *deptree.Tree
	winMgr   *window.Manager
	pred     markov.Predictor
	ckpts    *ckptStore

	fq    feedbackQueue
	slots []slot
	// assigned mirrors the slots for the splitter's bookkeeping (Fig. 7).
	assigned []*deptree.WindowVersion

	cgSeq      atomic.Uint64
	versionSeq uint64 // splitter only
	schedMark  uint64 // splitter only; per-cycle token

	inputDone atomic.Bool
	cancelled atomic.Bool // abort requested; the next splitter cycle finishes
	finished  atomic.Bool // run fully processed; done is closed
	splitBusy atomic.Bool // cooperative-splitter claim (Pool mode)
	done      chan struct{}

	feed feeder
	emit func(event.Complex)

	metrics metricsBox

	topkBuf []*deptree.WindowVersion
	msgBuf  []msg
	split   *worker // splitter-side worker for inline reprocessing
}

// newShard builds one shard of prog.
func newShard(prog *program) (*shardState, error) {
	pred, err := prog.newPredictor()
	if err != nil {
		return nil, err
	}
	s := &shardState{
		prog:     prog,
		ar:       arena.New(),
		consumed: arena.NewConsumedSet(),
		winMgr:   window.NewManager(prog.query.Window),
		pred:     pred,
		ckpts:    newCkptStore(),
		slots:    make([]slot, prog.cfg.Instances),
		assigned: make([]*deptree.WindowVersion, prog.cfg.Instances),
		done:     make(chan struct{}),
	}
	for i := range s.slots {
		s.slots[i].w = newWorker(s)
	}
	s.tree = deptree.NewTree(s.newVersion)
	s.tree.CapSize = prog.cfg.MaxSpeculation
	s.tree.OnDrop = func(wv *deptree.WindowVersion) {
		s.metrics.add(func(m *Metrics) { m.VersionsDropped++ })
	}
	s.split = newWorker(s)
	return s, nil
}

// begin wires the shard's intake and output before it is driven.
func (s *shardState) begin(feed feeder, emit func(event.Complex)) {
	if emit == nil {
		emit = func(event.Complex) {}
	}
	s.feed = feed
	s.emit = emit
}

// newVersion is the dependency tree's window-version factory. When
// checkpointing is enabled, the fresh version is seeded from the deepest
// valid checkpoint of an earlier version of the same window — the
// paper's "modified copy" made incremental: the fork replays only the
// suffix past the checkpoint instead of the whole window.
func (s *shardState) newVersion(win *window.Window, suppressed []*deptree.CG) *deptree.WindowVersion {
	s.versionSeq++
	wv := deptree.NewWindowVersion(s.versionSeq, win, suppressed)
	wv.SetPos(win.StartSeq)
	wv.LastCkpt = win.StartSeq
	if s.prog.cfg.CheckpointEvery > 0 {
		if ck, vers := s.ckpts.bestFor(wv, s.consumed); ck != nil {
			wv.Restore(ck)
			copy(wv.LastChecked, vers)
			s.metrics.add(func(m *Metrics) {
				m.VersionsSeeded++
				m.SeededEvents += ck.Pos - win.StartSeq
			})
		}
	}
	s.metrics.add(func(m *Metrics) { m.VersionsCreated++ })
	return wv
}

// splitLoop drives the splitter to completion on the calling goroutine:
// ingest → apply feedback → advance/emit → schedule, repeated until the
// stream is drained (paper §3.2.2) or ctx is done. Used by the dedicated
// Engine.Run path.
func (s *shardState) splitLoop(ctx context.Context) {
	idle := 0
	for {
		if ctx.Err() != nil {
			s.cancel()
		}
		worked := s.splitCycle()
		if s.runComplete() {
			s.finishRun()
			return
		}
		if worked {
			idle = 0
			continue
		}
		idle++
		if idle < 32 {
			runtime.Gosched()
		} else {
			time.Sleep(20 * time.Microsecond)
		}
	}
}

// splitterStep runs one cooperative splitter cycle if no other worker is
// inside it. It reports whether any progress was made. Pool workers call
// this; the claim keeps the splitter's single-threaded state safe.
func (s *shardState) splitterStep() bool {
	if s.finished.Load() {
		return false
	}
	if !s.splitBusy.CompareAndSwap(false, true) {
		return false
	}
	worked := s.splitCycle()
	if s.runComplete() {
		s.finishRun()
		worked = true
	}
	s.splitBusy.Store(false)
	return worked
}

// splitCycle is one splitter maintenance+scheduling cycle.
func (s *shardState) splitCycle() bool {
	if s.cancelled.Load() {
		// Aborted: emit nothing more; the caller's runComplete check
		// finishes the run.
		return false
	}
	worked := false

	if !s.inputDone.Load() && (s.tree.Size() < s.prog.cfg.MaxTreeSize || s.rootNeedsIngest()) {
		if s.ingest() > 0 {
			worked = true
		}
	}

	s.msgBuf = s.fq.drain(s.msgBuf[:0])
	if len(s.msgBuf) > 0 {
		worked = true
	}
	for i := range s.msgBuf {
		s.apply(&s.msgBuf[i])
	}

	if s.advanceRoots() {
		worked = true
	}

	s.schedule()
	s.metrics.add(func(m *Metrics) { m.Cycles++ })
	return worked
}

// runComplete reports whether the shard has fully processed its stream —
// or was cancelled, in which case the remaining tree state is abandoned.
func (s *shardState) runComplete() bool {
	if s.cancelled.Load() {
		return true
	}
	return s.inputDone.Load() && s.tree.Empty() && s.fq.empty()
}

// cancel requests an abort: the next splitter cycle (dedicated or
// pool-driven) observes it, skips the remaining work and finishes the
// run. Pending and future intake is discarded. Idempotent.
func (s *shardState) cancel() {
	if s.cancelled.CompareAndSwap(false, true) {
		if q, ok := s.feed.(*shardQueue); ok {
			q.discard()
		}
		s.inputDone.Store(true)
	}
}

// finishRun finalizes metrics, clears the scheduling slots and publishes
// completion. Called exactly once, by whoever drives the final splitter
// cycle.
func (s *shardState) finishRun() {
	s.metrics.add(func(m *Metrics) { m.MaxTreeSize = s.tree.MaxSize() })
	for i := range s.slots {
		s.slots[i].wv.Store(nil)
	}
	s.ckpts.clear()
	s.finished.Store(true)
	close(s.done)
}

// rootNeedsIngest reports whether the root window is still waiting for
// events, in which case ingestion must continue regardless of tree-size
// backpressure (liveness).
func (s *shardState) rootNeedsIngest() bool {
	root := s.tree.Root()
	if root == nil {
		return true
	}
	end := root.WV.Win.EndSeq()
	return end == window.UnknownEnd || s.ar.Len() < end
}

// ingest appends up to IngestBatch pending events to the arena, forming
// windows. Events become visible to the operator slots one by one, as
// they arrive. At end of stream it finalizes the window manager.
func (s *shardState) ingest() int {
	n := 0
	for ; n < s.prog.cfg.IngestBatch; n++ {
		ev, ok, done := s.feed.next()
		if !ok {
			if done {
				s.winMgr.Finish(s.ar.Len())
				s.inputDone.Store(true)
			}
			break
		}
		seq := s.ar.Append(ev)
		stored := s.ar.Get(seq)
		opened, _ := s.winMgr.Observe(stored)
		for _, w := range opened {
			s.tree.NewWindow(w)
			s.metrics.add(func(m *Metrics) { m.WindowsOpened++ })
		}
	}
	if n > 0 {
		s.metrics.add(func(m *Metrics) { m.EventsIngested += uint64(n) })
	}
	return n
}

// apply folds one feedback message into the dependency tree.
func (s *shardState) apply(m *msg) {
	switch m.kind {
	case msgCGCreated:
		s.tree.CGCreated(m.cg)
		s.metrics.add(func(mm *Metrics) { mm.CGsCreated++ })
	case msgCGResolved:
		out := m.cg.Outcome()
		s.tree.CGResolved(m.cg)
		s.metrics.add(func(mm *Metrics) {
			if out == deptree.CGCompleted {
				mm.CGsCompleted++
			} else {
				mm.CGsAbandoned++
			}
		})
	case msgRolledBack:
		s.tree.RebuildBelow(m.wv)
	case msgStats:
		for _, st := range m.stats {
			s.pred.RecordTransitionN(st.from, st.to, st.count)
		}
		putStatEntries(m.stats)
		m.stats = nil
	}
}

// advanceRoots validates, drains and pops finished roots (in-order
// emission). It returns whether any progress was made.
func (s *shardState) advanceRoots() bool {
	changed := false
	for {
		root := s.tree.Root()
		if root == nil {
			return changed
		}
		wv := root.WV
		if !wv.Validated() {
			s.validate(wv)
			changed = true
		}
		if s.drainOutputs(wv) {
			changed = true
		}
		if !wv.Finished() {
			return changed
		}
		child := root.Child()
		if child != nil && !child.IsWV() {
			// The root's own consumption group is still unresolved; its
			// resolution message is in flight (window end abandons every
			// open group, so it will arrive).
			return changed
		}
		s.drainOutputs(wv)
		s.tree.PopRoot()
		// The window is fully resolved: no further versions of it can be
		// created, so its checkpoints are dead weight.
		s.ckpts.drop(wv.Win.ID)
		changed = true
	}
}

// validate is the final gate (DESIGN.md §4.2): when a version becomes
// root, every event it used must be finally unconsumed and every event it
// speculatively skipped must be finally consumed. On violation the version
// is reprocessed deterministically. Either way the version leaves this
// function validated, so everything it emits afterwards is final.
func (s *shardState) validate(wv *deptree.WindowVersion) {
	wv.Mu.Lock()
	defer wv.Mu.Unlock()
	if wv.Validated() {
		return
	}
	ok := true
	for _, u := range wv.Used {
		if s.consumed.Contains(u) {
			ok = false
			break
		}
	}
	if ok {
		for _, sk := range wv.Skipped {
			if !s.consumed.Contains(sk) {
				ok = false
				break
			}
		}
	}
	if !ok {
		s.metrics.add(func(m *Metrics) { m.GateReprocessed++ })
		s.reprocessInline(wv)
	}
	wv.StatsEligible = true
	wv.MarkValidated()
}

// reprocessInline deterministically reprocesses wv (Mu held by caller):
// its dependents are rebuilt, its state reset, and the whole available
// window span is processed with suppression from the final consumed set
// only. Tree updates are applied synchronously.
func (s *shardState) reprocessInline(wv *deptree.WindowVersion) {
	s.tree.RebuildBelow(wv)
	wv.ResetToStart(s.prog.compiled.NewState())
	wv.Rollbacks++

	w := s.split
	for {
		w.msgs = w.msgs[:0]
		progressed := w.processSpan(wv, 1<<20)
		for i := range w.msgs {
			s.apply(&w.msgs[i])
		}
		if !progressed || wv.Finished() {
			return
		}
	}
}

// drainOutputs emits the validated root's buffered complex events and
// finalizes their consumption. Emission happens outside the version lock.
func (s *shardState) drainOutputs(wv *deptree.WindowVersion) bool {
	if !wv.Validated() {
		return false
	}
	wv.Mu.Lock()
	if len(wv.Buffered) == 0 {
		wv.Mu.Unlock()
		return false
	}
	out := make([]event.Complex, len(wv.Buffered))
	copy(out, wv.Buffered)
	wv.Buffered = wv.Buffered[:0]
	wv.Mu.Unlock()

	consumedCount := 0
	for i := range out {
		for _, seq := range out[i].Consumed {
			if !s.consumed.Contains(seq) {
				s.consumed.Mark(seq)
				consumedCount++
			}
		}
	}
	s.metrics.add(func(m *Metrics) {
		m.Matches += uint64(len(out))
		m.EventsConsumed += uint64(consumedCount)
	})
	for i := range out {
		s.emit(out[i])
	}
	return true
}

// schedule selects the top-k window versions and assigns the difference
// to free slots (paper Fig. 7: already-scheduled versions stay put).
func (s *shardState) schedule() {
	k := len(s.slots)
	arenaLen := s.ar.Len()
	avgSize := s.winMgr.AvgSize()
	inputDone := s.inputDone.Load()

	probOf := func(cg *deptree.CG) float64 {
		switch cg.Outcome() {
		case deptree.CGCompleted:
			return 1
		case deptree.CGAbandoned:
			return 0
		}
		owner := cg.Owner
		n := int(avgSize) - int(owner.Pos()-owner.Win.StartSeq)
		return s.pred.CompletionProbability(cg.Delta(), n)
	}
	eligible := func(wv *deptree.WindowVersion) bool {
		if wv.Finished() || wv.Dropped() {
			return false
		}
		pos := wv.Pos()
		limit := arenaLen
		if end := wv.Win.EndSeq(); end < limit {
			limit = end
		}
		if pos < limit {
			return true
		}
		// A version that consumed all available input still needs one
		// last scheduling round at stream end to run its window-end
		// logic.
		return inputDone && pos >= arenaLen
	}

	s.topkBuf = s.tree.TopK(k, probOf, eligible, s.topkBuf[:0])
	s.schedMark++

	for _, wv := range s.topkBuf {
		wv.SchedMark = s.schedMark
	}
	// First pass: free slots whose assignment fell out of the top-k
	// (or was dropped/finished).
	var free []int
	for i, cur := range s.assigned {
		if cur == nil {
			free = append(free, i)
			continue
		}
		if cur.SchedMark != s.schedMark || cur.Dropped() || cur.Finished() {
			cur.SetScheduledOn(-1)
			s.slots[i].wv.Store(nil)
			s.assigned[i] = nil
			free = append(free, i)
		}
	}
	// Second pass: schedule the not-yet-scheduled top-k versions.
	scheduled := 0
	for _, wv := range s.topkBuf {
		if wv.ScheduledOn() >= 0 {
			continue
		}
		if len(free) == 0 {
			break
		}
		i := free[0]
		free = free[1:]
		s.assigned[i] = wv
		wv.SetScheduledOn(i)
		s.slots[i].wv.Store(wv)
		scheduled++
	}
	if scheduled > 0 {
		s.metrics.add(func(m *Metrics) { m.SchedulesIssued += uint64(scheduled) })
	}
}

// Engine is the SPECTRE runtime for a single query over a single stream: a
// thin wrapper around one shardState driven by a dedicated splitter
// goroutine (the caller of Run) and k instance goroutines. Multi-query,
// key-partitioned deployments use Runtime instead, which multiplexes many
// shards onto a shared worker pool.
type Engine struct {
	prog  *program
	shard *shardState
	ran   bool
}

// New builds an engine for the query.
func New(q *pattern.Query, cfg Config) (*Engine, error) {
	prog, err := compile(q, cfg)
	if err != nil {
		return nil, err
	}
	s, err := newShard(prog)
	if err != nil {
		return nil, err
	}
	return &Engine{prog: prog, shard: s}, nil
}

// Run ingests the source, processes it with k operator instances and
// invokes emit for every complex event, in canonical order (window order;
// detection order within a window — exactly the sequential-engine order).
// emit must not call back into the engine. Run returns after the stream is
// fully processed, or with ctx.Err() as soon as ctx is done (within one
// splitter cycle; already-emitted output stands, the rest is discarded).
// An engine runs once.
func (e *Engine) Run(ctx context.Context, src stream.Source, emit func(event.Complex)) error {
	if e.ran {
		return ErrAlreadyRan
	}
	// A context that is already done rejects the call without consuming
	// the engine's single run.
	if err := ctx.Err(); err != nil {
		return err
	}
	e.ran = true
	s := e.shard
	s.begin(&sourceFeeder{ctx: ctx, src: src}, emit)

	var stop atomic.Bool
	var wg sync.WaitGroup
	for i := range s.slots {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s.slotLoop(i, &stop)
		}(i)
	}
	s.splitLoop(ctx)
	stop.Store(true)
	wg.Wait()
	if s.cancelled.Load() {
		return ctx.Err()
	}
	return nil
}

// MetricsSnapshot returns a copy of the runtime counters.
func (e *Engine) MetricsSnapshot() Metrics { return e.shard.metrics.snapshot() }
