package core

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/spectrecep/spectre/internal/arena"
	"github.com/spectrecep/spectre/internal/deptree"
	"github.com/spectrecep/spectre/internal/event"
	"github.com/spectrecep/spectre/internal/markov"
	"github.com/spectrecep/spectre/internal/matcher"
	"github.com/spectrecep/spectre/internal/pattern"
	"github.com/spectrecep/spectre/internal/stream"
	"github.com/spectrecep/spectre/internal/window"
)

// ErrAlreadyRan is returned when Run is called twice on one engine.
var ErrAlreadyRan = errors.New("core: an Engine can only Run once")

// Engine is the SPECTRE runtime for a single query.
type Engine struct {
	cfg      Config
	query    *pattern.Query
	compiled *matcher.Compiled

	ar       *arena.Arena
	consumed *arena.ConsumedSet
	tree     *deptree.Tree
	winMgr   *window.Manager
	pred     markov.Predictor

	fq    feedbackQueue
	sched []atomic.Pointer[deptree.WindowVersion] // per-instance assignment
	// assigned mirrors sched for the splitter's bookkeeping (Fig. 7).
	assigned []*deptree.WindowVersion

	cgSeq      atomic.Uint64
	versionSeq uint64 // splitter only
	schedMark  uint64 // splitter only; per-cycle token

	inputDone atomic.Bool
	stopFlag  atomic.Bool

	emit func(event.Complex)

	metrics metricsBox

	durWindow bool
	ran       bool

	topkBuf []*deptree.WindowVersion
	msgBuf  []msg
	split   *worker // splitter-side worker for inline reprocessing
}

// New builds an engine for the query.
func New(q *pattern.Query, cfg Config) (*Engine, error) {
	if err := q.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	cfg.setDefaults()
	compiled, err := matcher.Compile(&q.Pattern)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	pred := cfg.Predictor
	if pred == nil {
		model, err := markov.New(compiled.MinLength(), cfg.Markov)
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		pred = model
	}
	e := &Engine{
		cfg:       cfg,
		query:     q,
		compiled:  compiled,
		ar:        arena.New(),
		consumed:  arena.NewConsumedSet(),
		winMgr:    window.NewManager(q.Window),
		pred:      pred,
		sched:     make([]atomic.Pointer[deptree.WindowVersion], cfg.Instances),
		assigned:  make([]*deptree.WindowVersion, cfg.Instances),
		durWindow: q.Window.EndKind == pattern.EndDuration,
	}
	e.tree = deptree.NewTree(e.newVersion)
	e.tree.OnDrop = func(wv *deptree.WindowVersion) {
		e.metrics.add(func(m *Metrics) { m.VersionsDropped++ })
	}
	e.split = newWorker(e)
	return e, nil
}

// newVersion is the dependency tree's window-version factory.
func (e *Engine) newVersion(win *window.Window, suppressed []*deptree.CG) *deptree.WindowVersion {
	e.versionSeq++
	wv := deptree.NewWindowVersion(e.versionSeq, win, suppressed)
	wv.SetPos(win.StartSeq)
	e.metrics.add(func(m *Metrics) { m.VersionsCreated++ })
	return wv
}

// Run ingests the source, processes it with k operator instances and
// invokes emit for every complex event, in canonical order (window order;
// detection order within a window — exactly the sequential-engine order).
// emit must not call back into the engine. Run returns after the stream is
// fully processed; an engine runs once.
func (e *Engine) Run(src stream.Source, emit func(event.Complex)) error {
	if e.ran {
		return ErrAlreadyRan
	}
	e.ran = true
	if emit == nil {
		emit = func(event.Complex) {}
	}
	e.emit = emit

	var wg sync.WaitGroup
	for i := 0; i < e.cfg.Instances; i++ {
		in := newInstance(e, i)
		wg.Add(1)
		go func() {
			defer wg.Done()
			in.loop()
		}()
	}
	e.splitLoop(src)
	e.stopFlag.Store(true)
	wg.Wait()
	e.metrics.add(func(m *Metrics) { m.MaxTreeSize = e.tree.MaxSize() })
	return nil
}

// MetricsSnapshot returns a copy of the runtime counters.
func (e *Engine) MetricsSnapshot() Metrics { return e.metrics.snapshot() }

// splitLoop is the splitter: ingest → apply feedback → advance/emit →
// schedule, repeated until the stream is drained (paper §3.2.2).
func (e *Engine) splitLoop(src stream.Source) {
	idle := 0
	for {
		worked := false

		if !e.inputDone.Load() && (e.tree.Size() < e.cfg.MaxTreeSize || e.rootNeedsIngest()) {
			if e.ingest(src) > 0 {
				worked = true
			}
		}

		e.msgBuf = e.fq.drain(e.msgBuf[:0])
		if len(e.msgBuf) > 0 {
			worked = true
		}
		for i := range e.msgBuf {
			e.apply(&e.msgBuf[i])
		}

		if e.advanceRoots() {
			worked = true
		}

		e.schedule()
		e.metrics.add(func(m *Metrics) { m.Cycles++ })

		if e.inputDone.Load() && e.tree.Empty() && e.fq.empty() {
			return
		}
		if worked {
			idle = 0
			continue
		}
		idle++
		if idle < 32 {
			runtime.Gosched()
		} else {
			time.Sleep(20 * time.Microsecond)
		}
	}
}

// rootNeedsIngest reports whether the root window is still waiting for
// events, in which case ingestion must continue regardless of tree-size
// backpressure (liveness).
func (e *Engine) rootNeedsIngest() bool {
	root := e.tree.Root()
	if root == nil {
		return true
	}
	end := root.WV.Win.EndSeq()
	return end == window.UnknownEnd || e.ar.Len() < end
}

// ingest appends up to IngestBatch events to the arena, forming windows.
func (e *Engine) ingest(src stream.Source) int {
	n := 0
	for ; n < e.cfg.IngestBatch; n++ {
		ev, ok := src.Next()
		if !ok {
			e.winMgr.Finish(e.ar.Len())
			e.inputDone.Store(true)
			break
		}
		seq := e.ar.Append(ev)
		stored := e.ar.Get(seq)
		opened, _ := e.winMgr.Observe(stored)
		for _, w := range opened {
			e.tree.NewWindow(w)
			e.metrics.add(func(m *Metrics) { m.WindowsOpened++ })
		}
	}
	if n > 0 {
		e.metrics.add(func(m *Metrics) { m.EventsIngested += uint64(n) })
	}
	return n
}

// apply folds one feedback message into the dependency tree.
func (e *Engine) apply(m *msg) {
	switch m.kind {
	case msgCGCreated:
		e.tree.CGCreated(m.cg)
		e.metrics.add(func(mm *Metrics) { mm.CGsCreated++ })
	case msgCGResolved:
		out := m.cg.Outcome()
		e.tree.CGResolved(m.cg)
		e.metrics.add(func(mm *Metrics) {
			if out == deptree.CGCompleted {
				mm.CGsCompleted++
			} else {
				mm.CGsAbandoned++
			}
		})
	case msgRolledBack:
		e.tree.RebuildBelow(m.wv)
	case msgStats:
		for _, s := range m.stats {
			e.pred.RecordTransitionN(s.from, s.to, s.count)
		}
	}
}

// advanceRoots validates, drains and pops finished roots (in-order
// emission). It returns whether any progress was made.
func (e *Engine) advanceRoots() bool {
	changed := false
	for {
		root := e.tree.Root()
		if root == nil {
			return changed
		}
		wv := root.WV
		if !wv.Validated() {
			e.validate(wv)
			changed = true
		}
		if e.drainOutputs(wv) {
			changed = true
		}
		if !wv.Finished() {
			return changed
		}
		child := root.Child()
		if child != nil && !child.IsWV() {
			// The root's own consumption group is still unresolved; its
			// resolution message is in flight (window end abandons every
			// open group, so it will arrive).
			return changed
		}
		e.drainOutputs(wv)
		e.tree.PopRoot()
		changed = true
	}
}

// validate is the final gate (DESIGN.md §4.2): when a version becomes
// root, every event it used must be finally unconsumed and every event it
// speculatively skipped must be finally consumed. On violation the version
// is reprocessed deterministically. Either way the version leaves this
// function validated, so everything it emits afterwards is final.
func (e *Engine) validate(wv *deptree.WindowVersion) {
	wv.Mu.Lock()
	defer wv.Mu.Unlock()
	if wv.Validated() {
		return
	}
	ok := true
	for _, u := range wv.Used {
		if e.consumed.Contains(u) {
			ok = false
			break
		}
	}
	if ok {
		for _, s := range wv.Skipped {
			if !e.consumed.Contains(s) {
				ok = false
				break
			}
		}
	}
	if !ok {
		e.metrics.add(func(m *Metrics) { m.GateReprocessed++ })
		e.reprocessInline(wv)
	}
	wv.StatsEligible = true
	wv.MarkValidated()
}

// reprocessInline deterministically reprocesses wv (Mu held by caller):
// its dependents are rebuilt, its state reset, and the whole available
// window span is processed with suppression from the final consumed set
// only. Tree updates are applied synchronously.
func (e *Engine) reprocessInline(wv *deptree.WindowVersion) {
	e.tree.RebuildBelow(wv)
	wv.State = e.compiled.NewState()
	wv.SetPos(wv.Win.StartSeq)
	wv.Used = wv.Used[:0]
	wv.Skipped = wv.Skipped[:0]
	wv.LocalConsumed = wv.LocalConsumed[:0]
	wv.Buffered = wv.Buffered[:0]
	clear(wv.RunCGs)
	wv.ClearFinished()
	wv.Rollbacks++

	w := e.split
	for {
		w.msgs = w.msgs[:0]
		progressed := w.processSpan(wv, 1<<20)
		for i := range w.msgs {
			e.apply(&w.msgs[i])
		}
		if !progressed || wv.Finished() {
			return
		}
	}
}

// drainOutputs emits the validated root's buffered complex events and
// finalizes their consumption. Emission happens outside the version lock.
func (e *Engine) drainOutputs(wv *deptree.WindowVersion) bool {
	if !wv.Validated() {
		return false
	}
	wv.Mu.Lock()
	if len(wv.Buffered) == 0 {
		wv.Mu.Unlock()
		return false
	}
	out := make([]event.Complex, len(wv.Buffered))
	copy(out, wv.Buffered)
	wv.Buffered = wv.Buffered[:0]
	wv.Mu.Unlock()

	consumedCount := 0
	for i := range out {
		for _, seq := range out[i].Consumed {
			if !e.consumed.Contains(seq) {
				e.consumed.Mark(seq)
				consumedCount++
			}
		}
	}
	e.metrics.add(func(m *Metrics) {
		m.Matches += uint64(len(out))
		m.EventsConsumed += uint64(consumedCount)
	})
	for i := range out {
		e.emit(out[i])
	}
	return true
}

// schedule selects the top-k window versions and assigns the difference
// to free instances (paper Fig. 7: already-scheduled versions stay put).
func (e *Engine) schedule() {
	k := e.cfg.Instances
	arenaLen := e.ar.Len()
	avgSize := e.winMgr.AvgSize()
	inputDone := e.inputDone.Load()

	probOf := func(cg *deptree.CG) float64 {
		switch cg.Outcome() {
		case deptree.CGCompleted:
			return 1
		case deptree.CGAbandoned:
			return 0
		}
		owner := cg.Owner
		n := int(avgSize) - int(owner.Pos()-owner.Win.StartSeq)
		return e.pred.CompletionProbability(cg.Delta(), n)
	}
	eligible := func(wv *deptree.WindowVersion) bool {
		if wv.Finished() || wv.Dropped() {
			return false
		}
		pos := wv.Pos()
		limit := arenaLen
		if end := wv.Win.EndSeq(); end < limit {
			limit = end
		}
		if pos < limit {
			return true
		}
		// A version that consumed all available input still needs one
		// last scheduling round at stream end to run its window-end
		// logic.
		return inputDone && pos >= arenaLen
	}

	e.topkBuf = e.tree.TopK(k, probOf, eligible, e.topkBuf[:0])
	e.schedMark++

	for _, wv := range e.topkBuf {
		wv.SchedMark = e.schedMark
	}
	// First pass: free instances whose assignment fell out of the top-k
	// (or was dropped/finished).
	var free []int
	for i, cur := range e.assigned {
		if cur == nil {
			free = append(free, i)
			continue
		}
		if cur.SchedMark != e.schedMark || cur.Dropped() || cur.Finished() {
			cur.SetScheduledOn(-1)
			e.sched[i].Store(nil)
			e.assigned[i] = nil
			free = append(free, i)
		}
	}
	// Second pass: schedule the not-yet-scheduled top-k versions.
	scheduled := 0
	for _, wv := range e.topkBuf {
		if wv.ScheduledOn() >= 0 {
			continue
		}
		if len(free) == 0 {
			break
		}
		i := free[0]
		free = free[1:]
		e.assigned[i] = wv
		wv.SetScheduledOn(i)
		e.sched[i].Store(wv)
		scheduled++
	}
	if scheduled > 0 {
		e.metrics.add(func(m *Metrics) { m.SchedulesIssued += uint64(scheduled) })
	}
}
