package core

import (
	"context"
	"fmt"
	"testing"

	"github.com/spectrecep/spectre/internal/dataset"
	"github.com/spectrecep/spectre/internal/durable"
	"github.com/spectrecep/spectre/internal/event"
	"github.com/spectrecep/spectre/internal/pattern"
	"github.com/spectrecep/spectre/internal/queries"
)

// recoveryFixture builds a deterministic Q1-over-NYSE workload small
// enough for restart loops but busy enough to exercise checkpoints,
// cuts and watermarks.
func recoveryFixture(t *testing.T) (*event.Registry, *pattern.Query, []event.Event) {
	t.Helper()
	reg := event.NewRegistry()
	q, err := queries.Q1(reg, queries.Q1Config{Q: 2, WindowSize: 100, Leaders: 2})
	if err != nil {
		t.Fatal(err)
	}
	events := dataset.NYSE(reg, dataset.NYSEConfig{Symbols: 20, Leaders: 2, Minutes: 40, Seed: 11})
	return reg, q, events
}

// runLife runs one process lifetime against store: submit, recover,
// feed events[from:stopAfter], then stop. stopAfter >= 0 marks an
// intermediate life — the runtime shuts down mid-stream (durable shards
// park, in-flight windows go to the WAL); stopAfter < 0 marks the final
// life, which declares genuine end of stream (Drain) first. It returns
// the keys delivered during this lifetime and the position recovery said
// to resume from.
func runLife(t *testing.T, store durable.Store, reg *event.Registry, q *pattern.Query,
	cfg Config, events []event.Event, stopAfter int) (delivered []string, resumed uint64) {
	t.Helper()
	ctx := context.Background()
	rt := NewRuntime(RuntimeConfig{Workers: 2, Durable: store})
	cfg.Reg = reg
	h, err := rt.Submit(q, cfg, nil, 1, func(ce event.Complex) {
		delivered = append(delivered, ce.Key())
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Recover(ctx); err != nil {
		t.Fatal(err)
	}
	if pos := h.Recovered(); pos != nil {
		resumed = pos[0]
	}
	end := len(events)
	final := stopAfter < 0 || stopAfter >= end
	if !final {
		end = stopAfter
	}
	if int(resumed) < end {
		if err := h.FeedBatch(ctx, events[resumed:end]); err != nil {
			t.Fatal(err)
		}
	}
	if final {
		h.Drain()
	}
	if err := rt.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	return delivered, resumed
}

// referenceRun is the uninterrupted, non-durable run the recovered
// output must be byte-identical to.
func referenceRun(t *testing.T, reg *event.Registry, q *pattern.Query, cfg Config, events []event.Event) []string {
	t.Helper()
	delivered, _ := runLife(t, nil, reg, q, cfg, events, -1)
	return delivered
}

func assertKeysEqual(t *testing.T, label string, got, want []string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d matches, want %d\n got: %v\nwant: %v", label, len(got), len(want), got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: match %d = %s, want %s", label, i, got[i], want[i])
		}
	}
}

// TestRecoverCleanRestart stops the process cleanly mid-stream, restarts
// it against the same store and resumes: the concatenated delivered
// stream must equal the uninterrupted run exactly — windows spanning the
// restart re-form from the journal, matches delivered before the restart
// are suppressed on replay.
func TestRecoverCleanRestart(t *testing.T) {
	reg, q, events := recoveryFixture(t)
	cfg := Config{Instances: 2}
	want := referenceRun(t, reg, q, cfg, events)
	if len(want) == 0 {
		t.Fatal("fixture produced no matches")
	}

	for _, split := range []int{1, len(events) / 3, len(events) / 2, len(events) - 1} {
		t.Run(fmt.Sprintf("split=%d", split), func(t *testing.T) {
			store := durable.NewMemStore()
			part1, resumed := runLife(t, store, reg, q, cfg, events, split)
			if resumed != 0 {
				t.Fatalf("fresh store resumed at %d, want 0", resumed)
			}
			part2, resumed := runLife(t, store, reg, q, cfg, events, -1)
			if resumed > uint64(split) {
				t.Fatalf("recovery resumed at %d, past the %d events ever fed", resumed, split)
			}
			assertKeysEqual(t, "clean restart", append(part1, part2...), want)
		})
	}
}

// TestRecoverAcrossManyRestarts chains several restarts; every life
// resumes where the last one stopped and the concatenation stays exact.
func TestRecoverAcrossManyRestarts(t *testing.T) {
	reg, q, events := recoveryFixture(t)
	cfg := Config{Instances: 2}
	want := referenceRun(t, reg, q, cfg, events)

	store := durable.NewMemStore()
	var all []string
	n := len(events)
	for _, stop := range []int{n / 4, n / 2, 3 * n / 4, -1} {
		part, _ := runLife(t, store, reg, q, cfg, events, stop)
		all = append(all, part...)
	}
	assertKeysEqual(t, "chained restarts", all, want)
}

// TestRecoverCheckpointIntervals re-runs the clean-restart equivalence
// at the extreme checkpoint intervals: every event (maximal persisted
// checkpoints) and effectively never (pure journal replay).
func TestRecoverCheckpointIntervals(t *testing.T) {
	reg, q, events := recoveryFixture(t)
	for _, every := range []int{1, 4096} {
		t.Run(fmt.Sprintf("every=%d", every), func(t *testing.T) {
			cfg := Config{Instances: 2, CheckpointEvery: every}
			want := referenceRun(t, reg, q, cfg, events)
			store := durable.NewMemStore()
			part1, _ := runLife(t, store, reg, q, cfg, events, len(events)/2)
			part2, _ := runLife(t, store, reg, q, cfg, events, -1)
			assertKeysEqual(t, "checkpoint interval", append(part1, part2...), want)
		})
	}
}

// TestRecoverFileStore runs the clean-restart equivalence against the
// real segmented WAL with a tiny segment limit, forcing rotation and
// compaction mid-run.
func TestRecoverFileStore(t *testing.T) {
	reg, q, events := recoveryFixture(t)
	cfg := Config{Instances: 2}
	want := referenceRun(t, reg, q, cfg, events)

	store, err := durable.NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	store.SegmentBytes = 8 * 1024
	part1, _ := runLife(t, store, reg, q, cfg, events, len(events)/2)
	part2, _ := runLife(t, store, reg, q, cfg, events, -1)
	assertKeysEqual(t, "file store restart", append(part1, part2...), want)
}

// TestRecoverEmptyStore: durability on a fresh store changes nothing
// about the delivered stream, and Recover returns immediately.
func TestRecoverEmptyStore(t *testing.T) {
	reg, q, events := recoveryFixture(t)
	cfg := Config{Instances: 2}
	want := referenceRun(t, reg, q, cfg, events)
	got, resumed := runLife(t, durable.NewMemStore(), reg, q, cfg, events, -1)
	if resumed != 0 {
		t.Fatalf("resumed = %d, want 0", resumed)
	}
	assertKeysEqual(t, "durable-on fresh store", got, want)
}

// TestDurableRequiresName: the WAL shard is keyed by query name, so an
// anonymous query must be refused at submit.
func TestDurableRequiresName(t *testing.T) {
	reg, q, _ := recoveryFixture(t)
	anon := *q
	anon.Name = ""
	anon.Pattern.Name = "" // Validate backfills Query.Name from the pattern
	rt := NewRuntime(RuntimeConfig{Workers: 1, Durable: durable.NewMemStore()})
	defer rt.Close()
	if _, err := rt.Submit(&anon, Config{Instances: 1, Reg: reg}, nil, 1, nil, nil); err == nil {
		t.Fatal("Submit of unnamed durable query must fail")
	}
	if _, err := rt.Submit(q, Config{Instances: 1}, nil, 1, nil, nil); err == nil {
		t.Fatal("Submit of durable query without Reg must fail")
	}
}

// TestDurableMetrics: the persister's counters surface in Metrics.
func TestDurableMetrics(t *testing.T) {
	reg, q, events := recoveryFixture(t)
	ctx := context.Background()
	rt := NewRuntime(RuntimeConfig{Workers: 2, Durable: durable.NewMemStore()})
	h, err := rt.Submit(q, Config{Instances: 2, Reg: reg}, nil, 1, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.FeedBatch(ctx, events); err != nil {
		t.Fatal(err)
	}
	h.Drain()
	m := h.Metrics()
	if m.DurableAppends == 0 {
		t.Fatal("DurableAppends = 0 after a durable run")
	}
	if m.DurableSyncs == 0 {
		t.Fatal("DurableSyncs = 0 after a durable run that emitted matches")
	}
	if m.DurableErrors != 0 {
		t.Fatalf("DurableErrors = %d, want 0", m.DurableErrors)
	}
	if err := rt.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
}
