package core

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"github.com/spectrecep/spectre/internal/dataset"
	"github.com/spectrecep/spectre/internal/event"
	"github.com/spectrecep/spectre/internal/pattern"
	"github.com/spectrecep/spectre/internal/queries"
)

// TestMultipleConcurrentRuns exercises the multi-consumption-group path:
// several partial matches per window version, shared-reference structure
// copies in the dependency tree, and restart-fresh selection.
func TestMultipleConcurrentRuns(t *testing.T) {
	reg := event.NewRegistry()
	ta, tb := reg.TypeID("A"), reg.TypeID("B")
	p := pattern.Seq("multi",
		pattern.Step{Name: "A", Types: []event.Type{ta}},
		pattern.Step{Name: "B", Types: []event.Type{tb}},
	)
	p.Selection = pattern.SelectionPolicy{MaxConcurrentRuns: 3, OnCompletion: pattern.RestartFresh}
	p.ConsumeAll()
	q := &pattern.Query{
		Name:    "multi",
		Pattern: *p,
		Window: pattern.WindowSpec{
			StartKind: pattern.StartEvery, Every: 7,
			EndKind: pattern.EndCount, Count: 21,
		},
	}

	rng := rand.New(rand.NewSource(17))
	var events []event.Event
	for i := 0; i < 2000; i++ {
		ty := ta
		if rng.Intn(3) != 0 {
			ty = tb
		}
		events = append(events, event.Event{TS: int64(i), Type: ty})
	}
	want := runSequential(t, q, events)
	if len(want) == 0 {
		t.Fatal("workload produced no matches; test is vacuous")
	}
	for _, k := range []int{1, 2, 4, 8} {
		t.Run(fmt.Sprintf("k=%d", k), func(t *testing.T) {
			got, _ := runSpectre(t, q, events, Config{Instances: k})
			assertSameOutput(t, "multi-run", got, want)
		})
	}
}

// TestAggressiveConsistencyChecking runs with a check after every event and
// a tiny batch size, maximizing scheduling churn and handoffs.
func TestAggressiveConsistencyChecking(t *testing.T) {
	reg := event.NewRegistry()
	events := dataset.NYSE(reg, dataset.NYSEConfig{Symbols: 40, Leaders: 4, Minutes: 120, Seed: 13})
	q, err := queries.Q1(reg, queries.Q1Config{Q: 8, WindowSize: 300, Leaders: 4})
	if err != nil {
		t.Fatal(err)
	}
	want := runSequential(t, q, events)
	got, eng := runSpectre(t, q, events, Config{
		Instances:             4,
		ConsistencyCheckEvery: 1,
		BatchSize:             8,
		IngestBatch:           16,
	})
	assertSameOutput(t, "aggressive", got, want)
	m := eng.MetricsSnapshot()
	if m.EventsIngested != uint64(len(events)) {
		t.Fatalf("ingested %d, want %d", m.EventsIngested, len(events))
	}
}

// TestTinyTreeBackpressure forces the ingestion backpressure path: the
// dependency tree is capped far below the natural working set.
func TestTinyTreeBackpressure(t *testing.T) {
	reg := event.NewRegistry()
	events := dataset.NYSE(reg, dataset.NYSEConfig{Symbols: 30, Leaders: 3, Minutes: 100, Seed: 23})
	q, err := queries.Q1(reg, queries.Q1Config{Q: 5, WindowSize: 200, Leaders: 3})
	if err != nil {
		t.Fatal(err)
	}
	want := runSequential(t, q, events)
	got, eng := runSpectre(t, q, events, Config{Instances: 3, MaxTreeSize: 4})
	assertSameOutput(t, "backpressure", got, want)
	if m := eng.MetricsSnapshot(); m.EventsIngested != uint64(len(events)) {
		t.Fatal("backpressure must not lose events")
	}
}

// TestEmptyAndDegenerateStreams covers stream-edge behaviour.
func TestEmptyAndDegenerateStreams(t *testing.T) {
	reg := event.NewRegistry()
	q, err := queries.QE(reg, queries.QEConsumeSelectedB)
	if err != nil {
		t.Fatal(err)
	}
	t.Run("empty", func(t *testing.T) {
		got, eng := runSpectre(t, q, nil, Config{Instances: 2})
		if len(got) != 0 {
			t.Fatal("no events, no detections")
		}
		if m := eng.MetricsSnapshot(); m.WindowsOpened != 0 {
			t.Fatal("no windows expected")
		}
	})
	t.Run("no matching start", func(t *testing.T) {
		tb, _ := reg.LookupType("B")
		events := []event.Event{{TS: 0, Type: tb}, {TS: 1, Type: tb}}
		got, _ := runSpectre(t, q, events, Config{Instances: 2})
		if len(got) != 0 {
			t.Fatal("no windows, no detections")
		}
	})
	t.Run("window cut by stream end", func(t *testing.T) {
		ta, _ := reg.LookupType("A")
		tb, _ := reg.LookupType("B")
		// The duration window never sees its boundary event.
		events := []event.Event{
			{TS: 0, Type: ta},
			{TS: int64(time.Second), Type: tb},
		}
		want := runSequential(t, q, events)
		got, _ := runSpectre(t, q, events, Config{Instances: 2})
		assertSameOutput(t, "cut", got, want)
		if len(got) != 1 {
			t.Fatalf("expected the single A-B match, got %d", len(got))
		}
	})
}

// TestEngineRunsOnce verifies the one-shot contract.
func TestEngineRunsOnce(t *testing.T) {
	reg := event.NewRegistry()
	q, err := queries.QE(reg, queries.QEConsumeNone)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(q, Config{Instances: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(context.Background(), sliceSrc(nil), nil); err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(context.Background(), sliceSrc(nil), nil); err != ErrAlreadyRan {
		t.Fatalf("second Run = %v, want ErrAlreadyRan", err)
	}
}

// TestMetricsAccounting checks the bookkeeping identities after a run.
func TestMetricsAccounting(t *testing.T) {
	reg := event.NewRegistry()
	events := dataset.NYSE(reg, dataset.NYSEConfig{Symbols: 40, Leaders: 4, Minutes: 100, Seed: 31})
	q, err := queries.Q1(reg, queries.Q1Config{Q: 6, WindowSize: 250, Leaders: 4})
	if err != nil {
		t.Fatal(err)
	}
	_, eng := runSpectre(t, q, events, Config{Instances: 4})
	m := eng.MetricsSnapshot()
	if m.EventsIngested != uint64(len(events)) {
		t.Fatalf("ingested %d, want %d", m.EventsIngested, len(events))
	}
	if m.CGsCreated < m.CGsCompleted {
		t.Fatalf("created %d < completed %d", m.CGsCreated, m.CGsCompleted)
	}
	if m.VersionsCreated < m.WindowsOpened {
		t.Fatalf("versions %d < windows %d", m.VersionsCreated, m.WindowsOpened)
	}
	if m.Cycles == 0 || m.MaxTreeSize == 0 {
		t.Fatal("cycle and tree-size metrics must be populated")
	}
	if m.EventsProcessed == 0 {
		t.Fatal("processing metric must be populated")
	}
}

// sliceSrc is a minimal source for degenerate cases.
type sliceSrcT struct {
	evs []event.Event
	i   int
}

func sliceSrc(evs []event.Event) *sliceSrcT { return &sliceSrcT{evs: evs} }

func (s *sliceSrcT) Next() (event.Event, bool) {
	if s.i >= len(s.evs) {
		return event.Event{}, false
	}
	ev := s.evs[s.i]
	s.i++
	return ev, true
}

// TestRandomizedEquivalence is the flagship property test: random streams,
// random query shapes, random policies — the parallel engine must always
// produce exactly the sequential output.
func TestRandomizedEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("long property test")
	}
	for seed := int64(0); seed < 12; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			reg := event.NewRegistry()
			nTypes := 2 + rng.Intn(4)
			types := make([]event.Type, nTypes)
			for i := range types {
				types[i] = reg.TypeID(fmt.Sprintf("T%d", i))
			}

			// Random pattern: 2-4 steps over the type alphabet, optional
			// negation in the middle, random consumption flags.
			nSteps := 2 + rng.Intn(3)
			steps := make([]pattern.Step, 0, nSteps)
			for i := 0; i < nSteps; i++ {
				st := pattern.Step{
					Name:  fmt.Sprintf("S%d", i),
					Types: []event.Type{types[rng.Intn(nTypes)]},
				}
				if i > 0 && i < nSteps-1 && rng.Intn(5) == 0 {
					st.Negated = true
				}
				if rng.Intn(2) == 0 {
					st.Quant = pattern.OneOrMore
				}
				steps = append(steps, st)
			}
			// Negated steps cannot be Kleene; normalize.
			positives := 0
			for i := range steps {
				if steps[i].Negated {
					steps[i].Quant = pattern.One
				} else {
					positives++
				}
			}
			if positives < 2 {
				steps[0].Negated = false
				steps[len(steps)-1].Negated = false
			}
			if steps[len(steps)-1].Negated {
				steps[len(steps)-1].Negated = false
			}
			p := pattern.Seq("rand", steps...)
			p.Selection = pattern.SelectionPolicy{
				MaxConcurrentRuns: 1 + rng.Intn(2),
				OnCompletion:      pattern.CompletionBehavior(1 + rng.Intn(2)), // stop or restart-leader
			}
			if p.Selection.OnCompletion == pattern.RestartAfterLeader {
				// Leader must be a single-event step.
				steps[0].Quant = pattern.One
				steps[0].Negated = false
				p = pattern.Seq("rand", steps...)
				p.Selection = pattern.SelectionPolicy{MaxConcurrentRuns: 1, OnCompletion: pattern.RestartAfterLeader}
			}
			switch rng.Intn(3) {
			case 0:
				p.ConsumeAll()
			case 1:
				p.ConsumeNone()
			default:
				// Consume a random positive step.
				for _, st := range steps {
					if !st.Negated {
						if err := p.ConsumeSteps(st.Name); err != nil {
							t.Fatal(err)
						}
						break
					}
				}
			}

			ws := 20 + rng.Intn(80)
			q := &pattern.Query{
				Name:    "rand",
				Pattern: *p,
				Window: pattern.WindowSpec{
					StartKind: pattern.StartEvery,
					Every:     5 + rng.Intn(ws/2),
					EndKind:   pattern.EndCount,
					Count:     ws,
				},
			}
			if rng.Intn(3) == 0 {
				q.Window = pattern.WindowSpec{
					StartKind:  pattern.StartOnMatch,
					StartTypes: []event.Type{types[0]},
					EndKind:    pattern.EndCount,
					Count:      ws,
				}
			}
			if err := q.Validate(); err != nil {
				t.Skipf("degenerate random query: %v", err)
			}

			n := 1500 + rng.Intn(1500)
			events := make([]event.Event, n)
			for i := range events {
				events[i] = event.Event{TS: int64(i), Type: types[rng.Intn(nTypes)]}
			}

			want := runSequential(t, q, events)
			k := 1 + rng.Intn(6)
			check := 1 + rng.Intn(64)
			batch := 1 + rng.Intn(128)
			// Sweep the checkpoint interval across its extremes: disabled
			// (every fork reprocesses from the window start), every single
			// position (maximum seeding), and far beyond any window (only
			// the implicit batch-default cadence differs). The delivered
			// output must be identical in all three.
			for _, ckpt := range []int{-1, 1, 4096} {
				got, _ := runSpectre(t, q, events, Config{
					Instances:             k,
					ConsistencyCheckEvery: check,
					BatchSize:             batch,
					CheckpointEvery:       ckpt,
				})
				assertSameOutput(t, fmt.Sprintf("random(k=%d,ckpt=%d)", k, ckpt), got, want)
			}
		})
	}
}

// TestCheckpointSeededEquivalence drives the checkpoint-forking machinery
// hard: a consume-heavy overlapping-window workload with a tiny
// checkpoint interval and aggressive consistency checking, so forks are
// frequent and almost always seeded. Output must equal the sequential
// reference, and on this workload the seeding path must actually fire.
func TestCheckpointSeededEquivalence(t *testing.T) {
	reg := event.NewRegistry()
	events := dataset.Rand(reg, dataset.RandConfig{Symbols: 6, Events: 8000, Seed: 5})
	q, err := queries.Q3(reg, queries.Q3Config{SetSize: 3, WindowSize: 120, Slide: 30})
	if err != nil {
		t.Fatal(err)
	}
	want := runSequential(t, q, events)
	if len(want) == 0 {
		t.Fatal("workload produced no matches; test is vacuous")
	}
	seeded := uint64(0)
	// Intervals must fit inside the 120-event window for checkpoints to
	// be due at all.
	for _, ckpt := range []int{1, 16, 64} {
		t.Run(fmt.Sprintf("ckpt=%d", ckpt), func(t *testing.T) {
			got, eng := runSpectre(t, q, events, Config{
				Instances:             4,
				ConsistencyCheckEvery: 4,
				BatchSize:             32,
				CheckpointEvery:       ckpt,
			})
			assertSameOutput(t, fmt.Sprintf("ckpt=%d", ckpt), got, want)
			m := eng.MetricsSnapshot()
			if m.Checkpoints == 0 {
				t.Fatal("no checkpoints recorded on a speculation-heavy workload")
			}
			seeded += m.VersionsSeeded
		})
	}
	if seeded == 0 {
		t.Fatal("no fork was ever seeded from a checkpoint")
	}
}
