package core

import (
	"context"
	"fmt"
	"testing"
	"time"

	"github.com/spectrecep/spectre/internal/dataset"
	"github.com/spectrecep/spectre/internal/event"
	"github.com/spectrecep/spectre/internal/markov"
	"github.com/spectrecep/spectre/internal/pattern"
	"github.com/spectrecep/spectre/internal/queries"
	"github.com/spectrecep/spectre/internal/seqengine"
	"github.com/spectrecep/spectre/internal/stream"
)

// runSpectre executes the SPECTRE runtime over events and returns the
// emitted complex events in order.
func runSpectre(t *testing.T, q *pattern.Query, events []event.Event, cfg Config) ([]event.Complex, *Engine) {
	t.Helper()
	eng, err := New(q, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var out []event.Complex
	if err := eng.Run(context.Background(), stream.FromSlice(events), func(ce event.Complex) {
		out = append(out, ce)
	}); err != nil {
		t.Fatal(err)
	}
	return out, eng
}

// runSequential executes the reference engine.
func runSequential(t *testing.T, q *pattern.Query, events []event.Event) []event.Complex {
	t.Helper()
	eng, err := seqengine.New(q)
	if err != nil {
		t.Fatal(err)
	}
	out, _, err := eng.Run(append([]event.Event(nil), events...))
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// assertSameOutput compares two complex-event sequences exactly.
func assertSameOutput(t *testing.T, label string, got, want []event.Complex) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d complex events, want %d\n got: %v\nwant: %v",
			label, len(got), len(want), keysOf(got), keysOf(want))
	}
	for i := range want {
		if got[i].Key() != want[i].Key() {
			t.Fatalf("%s: event %d differs: got %s, want %s", label, i, got[i].Key(), want[i].Key())
		}
	}
}

func keysOf(out []event.Complex) []string {
	ks := make([]string, len(out))
	for i := range out {
		ks[i] = out[i].Key()
	}
	return ks
}

// TestFigure1Spectre checks that the parallel runtime reproduces the
// paper's Figure 1 for both consumption policies at several instance
// counts.
func TestFigure1Spectre(t *testing.T) {
	sec := func(s int) int64 { return int64(s) * int64(time.Second) }
	for _, cp := range []queries.QEConsumption{queries.QEConsumeNone, queries.QEConsumeSelectedB} {
		for _, k := range []int{1, 2, 4} {
			t.Run(fmt.Sprintf("cp=%d/k=%d", cp, k), func(t *testing.T) {
				reg := event.NewRegistry()
				q, err := queries.QE(reg, cp)
				if err != nil {
					t.Fatal(err)
				}
				ta, _ := reg.LookupType("A")
				tb, _ := reg.LookupType("B")
				events := []event.Event{
					{TS: sec(0), Type: ta},
					{TS: sec(10), Type: ta},
					{TS: sec(20), Type: tb},
					{TS: sec(40), Type: tb},
					{TS: sec(65), Type: tb},
				}
				want := runSequential(t, q, events)
				got, _ := runSpectre(t, q, events, Config{Instances: k})
				assertSameOutput(t, "figure1", got, want)
			})
		}
	}
}

// TestEquivalenceQ1 compares SPECTRE and the sequential engine on the Q1
// workload for several pattern sizes and instance counts.
func TestEquivalenceQ1(t *testing.T) {
	reg := event.NewRegistry()
	events := dataset.NYSE(reg, dataset.NYSEConfig{Symbols: 60, Leaders: 4, Minutes: 120, Seed: 7})
	for _, qsize := range []int{3, 10, 40} {
		q, err := queries.Q1(reg, queries.Q1Config{Q: qsize, WindowSize: 400, Leaders: 4})
		if err != nil {
			t.Fatal(err)
		}
		want := runSequential(t, q, events)
		for _, k := range []int{1, 2, 4} {
			t.Run(fmt.Sprintf("q=%d/k=%d", qsize, k), func(t *testing.T) {
				got, eng := runSpectre(t, q, events, Config{Instances: k})
				assertSameOutput(t, "q1", got, want)
				m := eng.MetricsSnapshot()
				if m.Matches != uint64(len(want)) {
					t.Fatalf("metrics count %d matches, emitted %d", m.Matches, len(want))
				}
			})
		}
	}
}

// TestEquivalenceQ2 compares the engines on the Kleene-heavy Q2 workload.
func TestEquivalenceQ2(t *testing.T) {
	reg := event.NewRegistry()
	events := dataset.NYSE(reg, dataset.NYSEConfig{Symbols: 50, Leaders: 4, Minutes: 150, Seed: 21})
	q, err := queries.Q2(reg, queries.Q2Config{WindowSize: 600, Slide: 100, LowerLimit: 80, UpperLimit: 125})
	if err != nil {
		t.Fatal(err)
	}
	want := runSequential(t, q, events)
	for _, k := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("k=%d", k), func(t *testing.T) {
			got, _ := runSpectre(t, q, events, Config{Instances: k})
			assertSameOutput(t, "q2", got, want)
		})
	}
}

// TestEquivalenceQ3 compares the engines on the set-detection workload.
func TestEquivalenceQ3(t *testing.T) {
	reg := event.NewRegistry()
	events := dataset.Rand(reg, dataset.RandConfig{Symbols: 20, Events: 6000, Seed: 99})
	q, err := queries.Q3(reg, queries.Q3Config{SetSize: 4, WindowSize: 200, Slide: 50})
	if err != nil {
		t.Fatal(err)
	}
	want := runSequential(t, q, events)
	if len(want) == 0 {
		t.Fatal("workload produced no matches; test is vacuous")
	}
	for _, k := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("k=%d", k), func(t *testing.T) {
			got, _ := runSpectre(t, q, events, Config{Instances: k})
			assertSameOutput(t, "q3", got, want)
		})
	}
}

// TestEquivalenceQEDense runs the Q_E query over a dense random A/B stream
// where windows overlap heavily — the hardest consumption-interleaving
// case.
func TestEquivalenceQEDense(t *testing.T) {
	reg := event.NewRegistry()
	q, err := queries.QE(reg, queries.QEConsumeSelectedB)
	if err != nil {
		t.Fatal(err)
	}
	ta, _ := reg.LookupType("A")
	tb, _ := reg.LookupType("B")
	// Deterministic pseudo-random A/B mix, ~4 events per minute so that
	// each 1-minute window spans several window openings.
	var events []event.Event
	state := uint64(42)
	next := func() uint64 {
		state = state*6364136223846793005 + 1442695040888963407
		return state >> 33
	}
	for i := 0; i < 600; i++ {
		typ := tb
		if next()%3 == 0 {
			typ = ta
		}
		events = append(events, event.Event{
			TS:   int64(i) * int64(15*time.Second),
			Type: typ,
		})
	}
	want := runSequential(t, q, events)
	if len(want) == 0 {
		t.Fatal("workload produced no matches; test is vacuous")
	}
	for _, k := range []int{1, 3, 8} {
		t.Run(fmt.Sprintf("k=%d", k), func(t *testing.T) {
			got, _ := runSpectre(t, q, events, Config{Instances: k})
			assertSameOutput(t, "qe-dense", got, want)
		})
	}
}

// TestFixedPredictor runs the engine with adversarially wrong fixed
// completion probabilities: correctness must not depend on prediction
// quality (only throughput should).
func TestFixedPredictor(t *testing.T) {
	reg := event.NewRegistry()
	events := dataset.NYSE(reg, dataset.NYSEConfig{Symbols: 40, Leaders: 4, Minutes: 100, Seed: 3})
	q, err := queries.Q1(reg, queries.Q1Config{Q: 5, WindowSize: 300, Leaders: 4})
	if err != nil {
		t.Fatal(err)
	}
	want := runSequential(t, q, events)
	for _, p := range []float64{0, 0.5, 1} {
		t.Run(fmt.Sprintf("p=%g", p), func(t *testing.T) {
			got, _ := runSpectre(t, q, events, Config{
				Instances: 3,
				Predictor: markov.Fixed{P: p},
			})
			assertSameOutput(t, "fixed", got, want)
		})
	}
}
