package core

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Pool is the process-wide worker pool of a Runtime: n goroutines that
// cooperatively drive every attached shard — its splitter cycle and its
// operator-instance slots. Work distribution is scan-based stealing: each
// worker sweeps the shard list starting at its own offset and claims
// whatever step (splitter or slot) is free, so idle capacity flows to
// whichever shard has work without any per-engine goroutines. With no
// shards attached, workers park until the next Attach.
type Pool struct {
	n      int
	mu     sync.Mutex // guards writes to the shard list and the park cond
	parked sync.Cond  // signalled on Attach and Close
	shards atomic.Pointer[[]*shardState]
	stop   atomic.Bool
	wg     sync.WaitGroup
}

// NewPool starts a pool with n workers; n <= 0 selects GOMAXPROCS.
func NewPool(n int) *Pool {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	p := &Pool{n: n}
	p.parked.L = &p.mu
	empty := make([]*shardState, 0)
	p.shards.Store(&empty)
	for i := 0; i < n; i++ {
		p.wg.Add(1)
		go p.worker(i)
	}
	return p
}

// Workers returns the number of pool workers.
func (p *Pool) Workers() int { return p.n }

// Attach adds shards to the pool's scan list (copy-on-write, so workers
// never observe a partially updated slice) and wakes parked workers.
func (p *Pool) Attach(shards ...*shardState) {
	p.mu.Lock()
	cur := *p.shards.Load()
	grown := make([]*shardState, 0, len(cur)+len(shards))
	grown = append(grown, cur...)
	grown = append(grown, shards...)
	p.shards.Store(&grown)
	p.parked.Broadcast()
	p.mu.Unlock()
}

// detachFinished drops completed shards from the scan list.
func (p *Pool) detachFinished() {
	p.mu.Lock()
	cur := *p.shards.Load()
	kept := make([]*shardState, 0, len(cur))
	for _, s := range cur {
		if !s.finished.Load() {
			kept = append(kept, s)
		}
	}
	p.shards.Store(&kept)
	p.mu.Unlock()
}

// Close stops the workers. Attached shards are not drained; callers drain
// handles first (Runtime.Close does).
func (p *Pool) Close() {
	p.stop.Store(true)
	p.mu.Lock()
	p.parked.Broadcast()
	p.mu.Unlock()
	p.wg.Wait()
}

// worker is the scan loop of one pool goroutine.
func (p *Pool) worker(id int) {
	defer p.wg.Done()
	idle := 0
	for !p.stop.Load() {
		shards := *p.shards.Load()
		if len(shards) == 0 {
			// Nothing attached: park until Attach or Close instead of
			// spinning for the process lifetime.
			p.mu.Lock()
			for len(*p.shards.Load()) == 0 && !p.stop.Load() {
				p.parked.Wait()
			}
			p.mu.Unlock()
			idle = 0
			continue
		}
		worked := false
		sawFinished := false
		for off := 0; off < len(shards); off++ {
			s := shards[(id+off)%len(shards)]
			if s.finished.Load() {
				sawFinished = true
				continue
			}
			if s.splitterStep() {
				worked = true
			}
			// Only the active prefix of the slot pool takes assignments;
			// parked slots are skipped entirely (zero wake-ups).
			for i, n := 0, int(s.activeSlots.Load()); i < n; i++ {
				if s.slotStep(i) {
					worked = true
				}
			}
		}
		if sawFinished {
			p.detachFinished()
		}
		if worked {
			idle = 0
			continue
		}
		// Exponential backoff while attached shards are quiescent (e.g. a
		// connected client that is not sending): 50us doubling to 1ms
		// keeps wake-ups bounded without the latency cost of full parking.
		idle++
		if idle < 32 {
			runtime.Gosched()
			continue
		}
		sleep := 50 * time.Microsecond << uint(min(idle-32, 5))
		if sleep > time.Millisecond {
			sleep = time.Millisecond
		}
		time.Sleep(sleep)
	}
}
