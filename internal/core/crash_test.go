//go:build faultinject

package core

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"github.com/spectrecep/spectre/internal/durable"
	"github.com/spectrecep/spectre/internal/event"
	"github.com/spectrecep/spectre/internal/faultinject"
	"github.com/spectrecep/spectre/internal/pattern"
	"github.com/spectrecep/spectre/internal/queries"
)

// qeFixture builds the paper's introductory QE query (duration windows,
// selected-B consumption) over a synthetic A/B stream.
func qeFixture(t *testing.T) (*event.Registry, *pattern.Query, []event.Event) {
	t.Helper()
	reg := event.NewRegistry()
	q, err := queries.QE(reg, queries.QEConsumeSelectedB)
	if err != nil {
		t.Fatal(err)
	}
	ta, _ := reg.LookupType("A")
	tb, _ := reg.LookupType("B")
	events := make([]event.Event, 0, 600)
	for i := 0; i < 600; i++ {
		typ := tb
		if i%5 == 0 || i%7 == 0 {
			typ = ta
		}
		events = append(events, event.Event{TS: int64(i) * int64(2*time.Second), Type: typ})
	}
	return reg, q, events
}

// runCrashLife is one simulated process lifetime under the fault
// harness: submit, recover, feed until done or killed, then shut down.
// It reports whether the stream completed (end of stream drained with
// the process still alive).
func runCrashLife(t *testing.T, store durable.Store, reg *event.Registry, q *pattern.Query,
	cfg Config, events []event.Event, stopAfter int, sink func(event.Complex)) bool {
	t.Helper()
	ctx := context.Background()
	rt := NewRuntime(RuntimeConfig{Workers: 2, Durable: store})
	cfg.Reg = reg
	h, err := rt.Submit(q, cfg, nil, 1, sink, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Recover(ctx); err != nil {
		t.Fatal(err)
	}
	pos := int(h.Recovered()[0])
	end := len(events)
	final := stopAfter < 0 || stopAfter >= end
	if !final {
		end = stopAfter
	}
	for i := pos; i < end && !faultinject.Killed(); i += 32 {
		j := i + 32
		if j > end {
			j = end
		}
		if err := h.FeedBatch(ctx, events[i:j]); err != nil {
			t.Fatal(err)
		}
	}
	if !final {
		// Ingestion is asynchronous and a mid-stream shutdown parks the
		// shard, discarding whatever is still queued. Wait until the fed
		// prefix was actually processed (or the kill fired) so
		// intermediate lives make real progress.
		for !faultinject.Killed() && int(h.shards[0].ar.Len()) < end {
			time.Sleep(100 * time.Microsecond)
		}
	}
	completed := false
	if final && !faultinject.Killed() {
		h.Drain()
		// The kill can also land during the end-of-stream drain; then
		// this life died like any other and the next one finishes.
		completed = !faultinject.Killed()
	}
	if err := rt.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	return completed
}

// crashCycle drives one full kill-and-recover scenario: an unarmed
// partial life first (so recovered state exists and the recovery-path
// crash points are reachable), then lives with the crash armed until it
// fires, then recovery lives until the stream completes. Returns every
// match delivered across all lives, in order; exactly-once means the
// result must be byte-identical to an uninterrupted run.
func crashCycle(t *testing.T, reg *event.Registry, q *pattern.Query, cfg Config,
	events []event.Event, point string, hitN int) []string {
	t.Helper()
	defer faultinject.Reset()
	ms := durable.NewMemStore()
	store := faultinject.Guard(ms)
	var delivered []string
	sink := func(ce event.Complex) { delivered = append(delivered, ce.Key()) }

	faultinject.Reset()
	runCrashLife(t, store, reg, q, cfg, events, len(events)/2, sink)

	armed := true
	for life := 0; life < 50; life++ {
		if armed {
			faultinject.Arm(point, hitN)
		} else {
			faultinject.Reset()
		}
		completed := runCrashLife(t, store, reg, q, cfg, events, -1, sink)
		if faultinject.Killed() {
			// Process death: everything unsynced is gone, stale handles
			// are inert, and the next life recovers from the WAL.
			armed = false
			ms.Crash()
			continue
		}
		if completed {
			return delivered
		}
	}
	t.Fatalf("crash point %s (hit %d): did not converge in 50 lives", point, hitN)
	return nil
}

// TestCrashPointCatalog asserts every named crash point in the catalog
// actually fires on a representative durable run with a restart — a
// renamed or unplugged Hit call site fails here, not silently.
func TestCrashPointCatalog(t *testing.T) {
	defer faultinject.Reset()
	faultinject.Reset()
	reg, q, events := recoveryFixture(t)
	cfg := Config{Instances: 2, CheckpointEvery: 1}
	store := durable.NewMemStore()
	var sink = func(event.Complex) {}
	runCrashLife(t, store, reg, q, cfg, events, len(events)/2, sink)
	runCrashLife(t, store, reg, q, cfg, events, -1, sink)
	for _, point := range faultinject.Catalog {
		if faultinject.Hits(point) == 0 {
			t.Errorf("crash point %q never fired", point)
		}
	}
}

// TestCrashRecoveryEquivalence is the exhaustive matrix: every crash
// point x checkpoint interval {1, default, 4096} x {Q1, QE}. Each cell
// kills the process at the armed point, recovers from the WAL, and
// asserts the concatenated delivered stream is byte-identical to the
// uninterrupted run — exactly-once, no loss, no duplicates.
func TestCrashRecoveryEquivalence(t *testing.T) {
	fixtures := []struct {
		name string
		fix  func(*testing.T) (*event.Registry, *pattern.Query, []event.Event)
	}{
		{"Q1", recoveryFixture},
		{"QE", qeFixture},
	}
	for _, f := range fixtures {
		reg, q, events := f.fix(t)
		for _, every := range []int{1, 0, 4096} {
			cfg := Config{Instances: 2, CheckpointEvery: every}
			faultinject.Reset()
			want := referenceRun(t, reg, q, cfg, events)
			if len(want) == 0 {
				t.Fatalf("%s: fixture produced no matches", f.name)
			}
			for _, point := range faultinject.Catalog {
				t.Run(fmt.Sprintf("%s/every=%d/%s", f.name, every, point), func(t *testing.T) {
					got := crashCycle(t, reg, q, cfg, events, point, 2)
					assertKeysEqual(t, "crash equivalence", got, want)
				})
			}
		}
	}
}

// TestCrashRecoverySoak is the randomized kill-and-recover soak: many
// iterations, each arming a random crash point at a random future hit
// with a random checkpoint interval, asserting byte-identical output
// every time.
func TestCrashRecoverySoak(t *testing.T) {
	iterations := 100
	if testing.Short() {
		iterations = 15
	}
	rng := rand.New(rand.NewSource(4217))
	intervals := []int{1, 0, 256, 4096}

	q1reg, q1, q1events := recoveryFixture(t)
	qereg, qe, qeevents := qeFixture(t)

	type fixture struct {
		reg    *event.Registry
		q      *pattern.Query
		events []event.Event
		refs   map[int][]string
	}
	fixtures := []*fixture{
		{reg: q1reg, q: q1, events: q1events, refs: map[int][]string{}},
		{reg: qereg, q: qe, events: qeevents, refs: map[int][]string{}},
	}

	for i := 0; i < iterations; i++ {
		f := fixtures[rng.Intn(len(fixtures))]
		every := intervals[rng.Intn(len(intervals))]
		point := faultinject.Catalog[rng.Intn(len(faultinject.Catalog))]
		hitN := 1 + rng.Intn(8)
		cfg := Config{Instances: 2, CheckpointEvery: every}
		want, ok := f.refs[every]
		if !ok {
			faultinject.Reset()
			want = referenceRun(t, f.reg, f.q, cfg, f.events)
			f.refs[every] = want
		}
		got := crashCycle(t, f.reg, f.q, cfg, f.events, point, hitN)
		if len(got) != len(want) {
			t.Fatalf("iteration %d (%s hit %d, every %d): %d matches, want %d",
				i, point, hitN, every, len(got), len(want))
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("iteration %d (%s hit %d, every %d): match %d = %s, want %s",
					i, point, hitN, every, j, got[j], want[j])
			}
		}
	}
}

// TestDegradedModeKeepsDelivering: a store that starts failing writes
// breaks durability but never the delivered stream (availability over
// durability, DESIGN.md §11).
func TestDegradedModeKeepsDelivering(t *testing.T) {
	defer faultinject.Reset()
	faultinject.Reset()
	reg, q, events := recoveryFixture(t)
	cfg := Config{Instances: 2}
	want := referenceRun(t, reg, q, cfg, events)

	store := faultinject.Flaky(durable.NewMemStore(), 7, 0)
	var got []string
	ctx := context.Background()
	rt := NewRuntime(RuntimeConfig{Workers: 2, Durable: store})
	h, err := rt.Submit(q, Config{Instances: 2, Reg: reg}, nil, 1, func(ce event.Complex) {
		got = append(got, ce.Key())
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.FeedBatch(ctx, events); err != nil {
		t.Fatal(err)
	}
	h.Drain()
	m := h.Metrics()
	if err := rt.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	assertKeysEqual(t, "degraded mode", got, want)
	if m.DurableErrors == 0 {
		t.Fatal("flaky store produced no DurableErrors")
	}
}

// TestFlakyLatencyBackpressure: a slow store stalls the persister, which
// backpressures ingest via the bounded request queue instead of growing
// an unbounded backlog; deliveries still match.
func TestFlakyLatencyBackpressure(t *testing.T) {
	defer faultinject.Reset()
	faultinject.Reset()
	reg, q, events := recoveryFixture(t)
	cfg := Config{Instances: 2}
	want := referenceRun(t, reg, q, cfg, events)

	store := faultinject.Flaky(durable.NewMemStore(), 0, 200*time.Microsecond)
	var got []string
	ctx := context.Background()
	rt := NewRuntime(RuntimeConfig{Workers: 2, Durable: store})
	h, err := rt.Submit(q, Config{Instances: 2, Reg: reg}, nil, 1, func(ce event.Complex) {
		got = append(got, ce.Key())
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.FeedBatch(ctx, events); err != nil {
		t.Fatal(err)
	}
	h.Drain()
	if err := rt.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	assertKeysEqual(t, "slow store", got, want)
}
