package core

import (
	"testing"
	"time"

	"github.com/spectrecep/spectre/internal/event"
	"github.com/spectrecep/spectre/internal/pattern"
)

func testQuery(t *testing.T, reg *event.Registry) *pattern.Query {
	t.Helper()
	ta, tb := reg.TypeID("A"), reg.TypeID("B")
	p := pattern.Seq("q",
		pattern.Step{Name: "A", Types: []event.Type{ta}},
		pattern.Step{Name: "B", Types: []event.Type{tb}},
	)
	p.ConsumeAll()
	return &pattern.Query{
		Name:    "q",
		Pattern: *p,
		Window: pattern.WindowSpec{
			StartKind: pattern.StartOnMatch, StartTypes: []event.Type{ta},
			EndKind: pattern.EndCount, Count: 8,
		},
	}
}

// TestRuntimeForgetsDrainedHandles guards the long-lived server case: a
// drained handle must leave the runtime's bookkeeping so its arenas can
// be collected.
func TestRuntimeForgetsDrainedHandles(t *testing.T) {
	reg := event.NewRegistry()
	rt := NewRuntime(RuntimeConfig{Workers: 2})
	defer rt.Close()

	for i := 0; i < 3; i++ {
		h, err := rt.Submit(testQuery(t, reg), Config{Instances: 1}, nil, 1, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := h.Feed(event.Event{TS: 1, Type: 1}); err != nil {
			t.Fatal(err)
		}
		h.Drain()
	}
	rt.mu.Lock()
	n := len(rt.handles)
	rt.mu.Unlock()
	if n != 0 {
		t.Fatalf("runtime retains %d drained handles, want 0", n)
	}
}

// TestShardQueueBackpressure checks that push blocks at capacity, resumes
// when the consumer drains, and is released by close.
func TestShardQueueBackpressure(t *testing.T) {
	q := newShardQueue()
	for i := 0; i < shardQueueCap; i++ {
		if !q.push(event.Event{Seq: uint64(i)}) {
			t.Fatal("push before capacity must succeed")
		}
	}
	pushed := make(chan bool, 1)
	go func() { pushed <- q.push(event.Event{Seq: shardQueueCap}) }()
	select {
	case <-pushed:
		t.Fatal("push beyond capacity must block")
	case <-time.After(20 * time.Millisecond):
	}
	if _, ok, _ := q.next(); !ok {
		t.Fatal("pop from full queue must succeed")
	}
	select {
	case ok := <-pushed:
		if !ok {
			t.Fatal("unblocked push must succeed")
		}
	case <-time.After(time.Second):
		t.Fatal("push must unblock after a pop")
	}

	// A blocked producer is released (with a drop) when the queue closes.
	blocked := make(chan bool, 1)
	for {
		q.mu.Lock()
		full := len(q.buf)-q.head >= shardQueueCap
		q.mu.Unlock()
		if full {
			break
		}
		q.push(event.Event{})
	}
	go func() { blocked <- q.push(event.Event{}) }()
	time.Sleep(10 * time.Millisecond)
	q.close()
	select {
	case ok := <-blocked:
		if ok {
			t.Fatal("push into a closed queue must report a drop")
		}
	case <-time.After(time.Second):
		t.Fatal("close must release blocked producers")
	}
	if q.push(event.Event{}) {
		t.Fatal("push after close must report a drop")
	}

	// Pending events still drain after close; then done is reported.
	drained := 0
	for {
		_, ok, done := q.next()
		if ok {
			drained++
			continue
		}
		if !done {
			t.Fatal("closed empty queue must report done")
		}
		break
	}
	if drained != shardQueueCap {
		t.Fatalf("drained %d pending events, want %d", drained, shardQueueCap)
	}
}
