package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"github.com/spectrecep/spectre/internal/event"
	"github.com/spectrecep/spectre/internal/pattern"
)

func testQuery(t *testing.T, reg *event.Registry) *pattern.Query {
	t.Helper()
	ta, tb := reg.TypeID("A"), reg.TypeID("B")
	p := pattern.Seq("q",
		pattern.Step{Name: "A", Types: []event.Type{ta}},
		pattern.Step{Name: "B", Types: []event.Type{tb}},
	)
	p.ConsumeAll()
	return &pattern.Query{
		Name:    "q",
		Pattern: *p,
		Window: pattern.WindowSpec{
			StartKind: pattern.StartOnMatch, StartTypes: []event.Type{ta},
			EndKind: pattern.EndCount, Count: 8,
		},
	}
}

// TestRuntimeForgetsDrainedHandles guards the long-lived server case: a
// drained handle must leave the runtime's bookkeeping so its arenas can
// be collected.
func TestRuntimeForgetsDrainedHandles(t *testing.T) {
	reg := event.NewRegistry()
	rt := NewRuntime(RuntimeConfig{Workers: 2})
	defer rt.Close()

	for i := 0; i < 3; i++ {
		h, err := rt.Submit(testQuery(t, reg), Config{Instances: 1}, nil, 1, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := h.Feed(context.Background(), event.Event{TS: 1, Type: 1}); err != nil {
			t.Fatal(err)
		}
		h.Drain()
	}
	rt.mu.Lock()
	n := len(rt.handles)
	rt.mu.Unlock()
	if n != 0 {
		t.Fatalf("runtime retains %d drained handles, want 0", n)
	}
}

// TestShardQueueBackpressure checks that push blocks at capacity, resumes
// when the consumer drains, and is released by close.
func TestShardQueueBackpressure(t *testing.T) {
	ctx := context.Background()
	const cap = 64
	q := newShardQueue(cap)
	for i := 0; i < cap; i++ {
		if err := q.push(ctx, event.Event{Seq: uint64(i)}); err != nil {
			t.Fatalf("push before capacity must succeed, got %v", err)
		}
	}
	pushed := make(chan error, 1)
	go func() { pushed <- q.push(ctx, event.Event{Seq: cap}) }()
	select {
	case <-pushed:
		t.Fatal("push beyond capacity must block")
	case <-time.After(20 * time.Millisecond):
	}
	if _, ok, _ := q.next(); !ok {
		t.Fatal("pop from full queue must succeed")
	}
	select {
	case err := <-pushed:
		if err != nil {
			t.Fatalf("unblocked push must succeed, got %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("push must unblock after a pop")
	}

	// A blocked producer is released (with a drop) when the queue closes.
	blocked := make(chan error, 1)
	for {
		q.mu.Lock()
		full := len(q.buf)-q.head >= cap
		q.mu.Unlock()
		if full {
			break
		}
		if err := q.push(ctx, event.Event{}); err != nil {
			t.Fatal(err)
		}
	}
	go func() { blocked <- q.push(ctx, event.Event{}) }()
	time.Sleep(10 * time.Millisecond)
	q.close()
	select {
	case err := <-blocked:
		if err != ErrHandleClosed {
			t.Fatalf("push into a closed queue = %v, want ErrHandleClosed", err)
		}
	case <-time.After(time.Second):
		t.Fatal("close must release blocked producers")
	}
	if err := q.push(ctx, event.Event{}); err != ErrHandleClosed {
		t.Fatalf("push after close = %v, want ErrHandleClosed", err)
	}

	// Pending events still drain after close; then done is reported.
	drained := 0
	for {
		_, ok, done := q.next()
		if ok {
			drained++
			continue
		}
		if !done {
			t.Fatal("closed empty queue must report done")
		}
		break
	}
	if drained != cap {
		t.Fatalf("drained %d pending events, want %d", drained, cap)
	}
}

// TestShardQueueContextCancel checks that a producer blocked on a full
// queue is released with the context error — the "cancelled context
// unblocks Feed within one ingest cycle" contract.
func TestShardQueueContextCancel(t *testing.T) {
	q := newShardQueue(2)
	ctx, cancel := context.WithCancel(context.Background())
	for i := 0; i < 2; i++ {
		if err := q.push(ctx, event.Event{Seq: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	blocked := make(chan error, 1)
	go func() { blocked <- q.push(ctx, event.Event{Seq: 2}) }()
	select {
	case <-blocked:
		t.Fatal("push beyond capacity must block")
	case <-time.After(10 * time.Millisecond):
	}
	cancel()
	select {
	case err := <-blocked:
		if err != context.Canceled {
			t.Fatalf("cancelled push = %v, want context.Canceled", err)
		}
	case <-time.After(time.Second):
		t.Fatal("cancel must release the blocked producer")
	}
	// An already-cancelled context fails fast even with queue space.
	if _, ok, _ := q.next(); !ok {
		t.Fatal("pop must succeed")
	}
	if err := q.push(ctx, event.Event{}); err != context.Canceled {
		t.Fatalf("push with done ctx = %v, want context.Canceled", err)
	}
}

// TestShardQueueTryPushAndBatch covers the non-blocking and batched
// admission paths.
func TestShardQueueTryPushAndBatch(t *testing.T) {
	ctx := context.Background()
	q := newShardQueue(4)
	evs := []event.Event{{Seq: 0}, {Seq: 1}, {Seq: 2}}
	if err := q.pushBatch(ctx, evs); err != nil {
		t.Fatal(err)
	}
	if _, ok := q.tryPush(event.Event{Seq: 3}); !ok {
		t.Fatal("tryPush below capacity must succeed")
	}
	if pending, ok := q.tryPush(event.Event{Seq: 4}); ok || pending != 4 {
		t.Fatalf("tryPush at capacity = (%d, %v), want (4, false)", pending, ok)
	}
	// A batch admits as one unit once there is head-of-queue space, even
	// if it overshoots the cap.
	if _, ok, _ := q.next(); !ok {
		t.Fatal("pop must succeed")
	}
	if err := q.pushBatch(ctx, evs); err != nil {
		t.Fatal(err)
	}
	got := 0
	for {
		_, ok, _ := q.next()
		if !ok {
			break
		}
		got++
	}
	if got != 6 {
		t.Fatalf("drained %d events, want 6", got)
	}
	q.discard()
	if _, ok := q.tryPush(event.Event{}); ok {
		t.Fatal("tryPush after discard must fail")
	}
	if _, ok, done := q.next(); ok || !done {
		t.Fatal("discarded queue must be empty and done")
	}
}

// TestSubmitShutdownRace guards the Submit/Shutdown serialization: a
// Submit racing a concurrent Shutdown either lands fully (its handle is
// part of the drain) or is refused with ErrShuttingDown — never a third
// state where the handle exists but the shutdown already passed it by,
// leaving it orphaned past the drain. Run with -race.
func TestSubmitShutdownRace(t *testing.T) {
	for round := 0; round < 30; round++ {
		reg := event.NewRegistry()
		rt := NewRuntime(RuntimeConfig{Workers: 2})

		const submitters = 4
		type result struct {
			h   *Handle
			err error
		}
		results := make(chan result, submitters)
		start := make(chan struct{})
		for i := 0; i < submitters; i++ {
			go func() {
				<-start
				h, err := rt.Submit(testQuery(t, reg), Config{Instances: 1}, nil, 1, nil, nil)
				results <- result{h, err}
			}()
		}
		done := make(chan error, 1)
		go func() {
			<-start
			done <- rt.Shutdown(context.Background())
		}()
		close(start)

		if err := <-done; err != nil {
			t.Fatalf("Shutdown: %v", err)
		}
		for i := 0; i < submitters; i++ {
			r := <-results
			switch {
			case r.err == nil:
				// Admitted before the close: the shutdown must have
				// drained it — Wait returns immediately, no hang.
				r.h.Wait()
			case errors.Is(r.err, ErrRuntimeClosed):
				// Refused: nothing to clean up.
			default:
				t.Fatalf("Submit = %v, want nil or ErrShuttingDown", r.err)
			}
		}
	}
}

// TestSubmitAfterShutdownRefused: the non-racy half of the contract.
func TestSubmitAfterShutdownRefused(t *testing.T) {
	reg := event.NewRegistry()
	rt := NewRuntime(RuntimeConfig{Workers: 1})
	if err := rt.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	_, err := rt.Submit(testQuery(t, reg), Config{Instances: 1}, nil, 1, nil, nil)
	if !errors.Is(err, ErrShuttingDown) || !errors.Is(err, ErrRuntimeClosed) {
		t.Fatalf("Submit after Shutdown = %v, want ErrShuttingDown (matching ErrRuntimeClosed)", err)
	}
}
