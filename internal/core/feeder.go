package core

import (
	"sync"

	"github.com/spectrecep/spectre/internal/event"
	"github.com/spectrecep/spectre/internal/stream"
)

// feeder abstracts the splitter's event intake so the same splitter code
// serves both a dedicated blocking run (Engine.Run over a stream.Source)
// and a pool-driven shard fed asynchronously through a queue.
type feeder interface {
	// next returns the next event. ok=false with done=false means no
	// event is available right now (queue feeders; the splitter carries
	// on with its cycle); ok=false with done=true means the stream has
	// ended for good. A source-backed feeder may block in next, exactly
	// like the historical splitter blocked in Source.Next.
	next() (ev event.Event, ok bool, done bool)
}

// sourceFeeder adapts a blocking stream.Source.
type sourceFeeder struct {
	src stream.Source
	eos bool
}

func (f *sourceFeeder) next() (event.Event, bool, bool) {
	if f.eos {
		return event.Event{}, false, true
	}
	ev, ok := f.src.Next()
	if !ok {
		f.eos = true
		return event.Event{}, false, true
	}
	return ev, true, false
}

// shardQueueCap bounds the pending backlog of one shard queue. A full
// queue blocks push, so backpressure propagates from a slow shard to
// Handle.Feed and, through it, to whatever drives the stream (for the
// TCP server: the connection's read loop, and thus the client's send
// window) — mirroring the blocking-source ingest of a dedicated engine.
const shardQueueCap = 1 << 16

// shardQueue is the asynchronous intake of one pool-driven shard: the
// routing side pushes events (blocking while the shard is shardQueueCap
// events behind), the shard's splitter pops them without ever blocking.
// Closing marks end of stream once the backlog drains.
type shardQueue struct {
	mu     sync.Mutex
	space  sync.Cond // signalled when the backlog drops below capacity
	buf    []event.Event
	head   int
	closed bool
}

func newShardQueue() *shardQueue {
	q := &shardQueue{}
	q.space.L = &q.mu
	return q
}

// push appends ev, blocking while the queue is full. It reports false
// when the queue is closed (the event is dropped).
func (q *shardQueue) push(ev event.Event) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	for !q.closed && len(q.buf)-q.head >= shardQueueCap {
		q.space.Wait()
	}
	if q.closed {
		return false
	}
	q.buf = append(q.buf, ev)
	return true
}

// close marks end of stream; pending events are still delivered and any
// blocked producers are released.
func (q *shardQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.space.Broadcast()
	q.mu.Unlock()
}

// next implements feeder. It never blocks.
func (q *shardQueue) next() (event.Event, bool, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.head < len(q.buf) {
		ev := q.buf[q.head]
		q.buf[q.head] = event.Event{}
		q.head++
		if len(q.buf)-q.head == shardQueueCap-1 {
			q.space.Broadcast()
		}
		// Compact once the consumed prefix dominates, so the backing
		// array does not grow without bound on long streams.
		if q.head >= 1024 && q.head*2 >= len(q.buf) {
			n := copy(q.buf, q.buf[q.head:])
			q.buf = q.buf[:n]
			q.head = 0
		}
		return ev, true, false
	}
	return event.Event{}, false, q.closed
}
