package core

import (
	"context"
	"sync"

	"github.com/spectrecep/spectre/internal/event"
	"github.com/spectrecep/spectre/internal/plan"
	"github.com/spectrecep/spectre/internal/stream"
)

// feeder abstracts the splitter's event intake so the same splitter code
// serves both a dedicated blocking run (Engine.Run over a stream.Source)
// and a pool-driven shard fed asynchronously through a queue.
type feeder interface {
	// next returns the next event. ok=false with done=false means no
	// event is available right now (queue feeders; the splitter carries
	// on with its cycle); ok=false with done=true means the stream has
	// ended for good. A source-backed feeder may block in next, exactly
	// like the historical splitter blocked in Source.Next.
	next() (ev event.Event, ok bool, done bool)
	// depth reports the pending backlog — the queue-pressure signal of
	// the scheduling control plane. Pull-based feeders report 0.
	depth() int
}

// sourceFeeder adapts a blocking stream.Source, honouring the run's
// context: a done context ends the stream, and sources that implement
// stream.ContextSource (e.g. ChanSource) unblock mid-read.
type sourceFeeder struct {
	ctx context.Context
	src stream.Source
	eos bool
}

func (f *sourceFeeder) next() (event.Event, bool, bool) {
	if f.eos {
		return event.Event{}, false, true
	}
	if f.ctx.Err() != nil {
		f.eos = true
		return event.Event{}, false, true
	}
	var (
		ev event.Event
		ok bool
	)
	if cs, ctxAware := f.src.(stream.ContextSource); ctxAware {
		ev, ok = cs.NextCtx(f.ctx)
	} else {
		ev, ok = f.src.Next()
	}
	if !ok {
		f.eos = true
		return event.Event{}, false, true
	}
	return ev, true, false
}

// depth implements feeder: a pull-based source has no backlog.
func (f *sourceFeeder) depth() int { return 0 }

// filterFeeder applies the planner's intake prefilter to a dedicated
// engine run. Every raw event consumes a sequence position; admitted
// events are stamped with theirs (AppendAt preserves it), rejected ones
// leave a gap and are counted as filtered. Runs on the splitter
// goroutine only, like the feeder it wraps.
type filterFeeder struct {
	inner feeder
	pl    *plan.Plan
	shard *shardState
	seq   uint64
}

func (f *filterFeeder) next() (event.Event, bool, bool) {
	for {
		ev, ok, done := f.inner.next()
		if !ok {
			return ev, ok, done
		}
		seq := f.seq
		f.seq++
		if f.pl.Admit(&ev) {
			ev.Seq = seq
			return ev, true, false
		}
		f.pl.CountFiltered(1)
		f.shard.filteredIn.Add(1)
	}
}

func (f *filterFeeder) depth() int { return f.inner.depth() }

// defaultQueueCap bounds the pending backlog of one shard queue. A full
// queue blocks push, so backpressure propagates from a slow shard to
// Handle.Feed and, through it, to whatever drives the stream (for the
// TCP server: the connection's read loop, and thus the client's send
// window) — mirroring the blocking-source ingest of a dedicated engine.
const defaultQueueCap = 1 << 16

// shardQueue is the asynchronous intake of one pool-driven shard: the
// routing side pushes events or whole batches (blocking while the shard
// is cap events behind, unblocking early when the pusher's context is
// cancelled), the shard's splitter pops them without ever blocking.
// Closing marks end of stream once the backlog drains.
type shardQueue struct {
	mu     sync.Mutex
	space  sync.Cond // signalled when the backlog drops below capacity
	buf    []event.Event
	head   int
	cap    int
	closed bool
}

func newShardQueue(capacity int) *shardQueue {
	if capacity <= 0 {
		capacity = defaultQueueCap
	}
	q := &shardQueue{cap: capacity}
	q.space.L = &q.mu
	return q
}

// waitSpace blocks (mu held) until the queue has room, is closed, or ctx
// is done. It reports the terminal condition as an error; nil means the
// caller may append.
func (q *shardQueue) waitSpace(ctx context.Context) error {
	if q.closed {
		return ErrHandleClosed
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if len(q.buf)-q.head < q.cap {
		return nil
	}
	// Only a blocked push pays for the cancellation hook: AfterFunc wakes
	// the condition variable so a cancelled producer leaves promptly.
	stop := context.AfterFunc(ctx, func() {
		q.mu.Lock()
		q.space.Broadcast()
		q.mu.Unlock()
	})
	defer stop()
	for !q.closed && len(q.buf)-q.head >= q.cap {
		if err := ctx.Err(); err != nil {
			return err
		}
		q.space.Wait()
	}
	if q.closed {
		return ErrHandleClosed
	}
	return ctx.Err()
}

// push appends ev, blocking while the queue is full. It returns
// ErrHandleClosed when the queue closed, or the context error when ctx
// was done first.
func (q *shardQueue) push(ctx context.Context, ev event.Event) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if err := q.waitSpace(ctx); err != nil {
		return err
	}
	q.buf = append(q.buf, ev)
	return nil
}

// pushBatch appends evs in one critical section, blocking until the queue
// has room for the batch's head. The whole batch is admitted at once (the
// backlog may transiently overshoot cap by len(evs)-1 events) — that is
// the point: one lock acquisition and one wakeup per batch instead of per
// event.
func (q *shardQueue) pushBatch(ctx context.Context, evs []event.Event) error {
	if len(evs) == 0 {
		return nil
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if err := q.waitSpace(ctx); err != nil {
		return err
	}
	q.buf = append(q.buf, evs...)
	return nil
}

// load preloads evs ahead of any live input, bypassing the capacity
// check: crash recovery seeds the queue with the persisted journal
// suffix before the shard is attached to the pool, and the replay
// backlog may legitimately exceed the live-intake cap.
func (q *shardQueue) load(evs []event.Event) {
	q.mu.Lock()
	q.buf = append(q.buf, evs...)
	q.mu.Unlock()
}

// tryPush appends ev without blocking. A full queue returns pending (the
// current backlog) and false; the caller wraps it into an *OverloadError.
// A closed queue returns ErrHandleClosed via ok=false, pending=-1.
func (q *shardQueue) tryPush(ev event.Event) (pending int, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return -1, false
	}
	if n := len(q.buf) - q.head; n >= q.cap {
		return n, false
	}
	q.buf = append(q.buf, ev)
	return 0, true
}

// close marks end of stream; pending events are still delivered and any
// blocked producers are released.
func (q *shardQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.space.Broadcast()
	q.mu.Unlock()
}

// discard drops the pending backlog and closes the queue (abort path:
// a cancelled handle must not keep feeding its splitter).
func (q *shardQueue) discard() {
	q.mu.Lock()
	q.buf = nil
	q.head = 0
	q.closed = true
	q.space.Broadcast()
	q.mu.Unlock()
}

// depth implements feeder: the pending backlog.
func (q *shardQueue) depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.buf) - q.head
}

// next implements feeder. It never blocks.
func (q *shardQueue) next() (event.Event, bool, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.head < len(q.buf) {
		ev := q.buf[q.head]
		q.buf[q.head] = event.Event{}
		q.head++
		if len(q.buf)-q.head == q.cap-1 {
			q.space.Broadcast()
		}
		// Compact once the consumed prefix dominates, so the backing
		// array does not grow without bound on long streams.
		if q.head >= 1024 && q.head*2 >= len(q.buf) {
			n := copy(q.buf, q.buf[q.head:])
			q.buf = q.buf[:n]
			q.head = 0
		}
		return ev, true, false
	}
	return event.Event{}, false, q.closed
}
