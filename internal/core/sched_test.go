package core

import (
	"sync/atomic"
	"testing"
	"time"

	"github.com/spectrecep/spectre/internal/dataset"
	"github.com/spectrecep/spectre/internal/deptree"
	"github.com/spectrecep/spectre/internal/event"
	"github.com/spectrecep/spectre/internal/pattern"
	"github.com/spectrecep/spectre/internal/queries"
	"github.com/spectrecep/spectre/internal/sched"
)

// oscPolicy is a scripted control plane for tests: top-k selection, but
// the slot pool and speculation budget oscillate between two sizes on a
// fixed cycle period — the hardest resize schedule (shrink and grow
// mid-run, over and over).
type oscPolicy struct {
	inner          sched.Policy
	cycle, period  int
	loK, hiK       int
	loSpec, hiSpec int
}

func (p *oscPolicy) Select(env sched.Env, k int, out []*deptree.WindowVersion) []*deptree.WindowVersion {
	return p.inner.Select(env, k, out)
}

func (p *oscPolicy) Tune(sched.Signals) sched.Decision {
	p.cycle++
	if (p.cycle/p.period)%2 == 0 {
		return sched.Decision{Slots: p.hiK, Spec: p.hiSpec}
	}
	return sched.Decision{Slots: p.loK, Spec: p.loSpec}
}

// schedPolicies enumerates the scheduling configurations the equivalence
// suite sweeps: the paper's static top-k, the Fig. 11 fixed-probability
// baseline at both extremes and the midpoint, the adaptive policy on an
// aggressive cadence, and a scripted mid-run resize schedule.
func schedPolicies(k int) []struct {
	label string
	apply func(*Config)
} {
	return []struct {
		label string
		apply func(*Config)
	}{
		{"topk", func(*Config) {}},
		{"fixedprob=0", func(c *Config) { c.Sched = sched.Config{Kind: sched.FixedProb, FixedP: 0} }},
		{"fixedprob=0.5", func(c *Config) { c.Sched = sched.Config{Kind: sched.FixedProb, FixedP: 0.5} }},
		{"fixedprob=1", func(c *Config) { c.Sched = sched.Config{Kind: sched.FixedProb, FixedP: 1} }},
		{"adaptive", func(c *Config) {
			c.Sched = sched.Config{
				Kind: sched.Adaptive, MinSlots: 1, MaxSlots: k + 2,
				MinSpec: 16, AdjustEvery: 4, Procs: k + 2,
			}
		}},
		{"oscillating", func(c *Config) {
			c.Sched = sched.Config{MaxSlots: k + 2} // raises the pool ceiling
			c.SchedFactory = func() sched.Policy {
				return &oscPolicy{
					inner:  sched.Config{}.New(k, 256),
					period: 16,
					loK:    1, hiK: k + 2,
					loSpec: 16, hiSpec: 256,
				}
			}
		}},
	}
}

// TestPolicyEquivalence is the cross-policy flagship: the delivered
// output must be byte-identical to the sequential reference under every
// scheduling policy — including mid-run shrinks and grows of the slot
// pool and the speculation budget. The scheduling layer sits above the
// §4.2 validation gate, so it may only change performance, never output.
func TestPolicyEquivalence(t *testing.T) {
	reg := event.NewRegistry()
	nyse := dataset.NYSE(reg, dataset.NYSEConfig{Symbols: 40, Leaders: 4, Minutes: 120, Seed: 11})
	q1, err := queries.Q1(reg, queries.Q1Config{Q: 8, WindowSize: 300, Leaders: 4})
	if err != nil {
		t.Fatal(err)
	}
	regR := event.NewRegistry()
	random := dataset.Rand(regR, dataset.RandConfig{Symbols: 8, Events: 6000, Seed: 7})
	q3, err := queries.Q3(regR, queries.Q3Config{SetSize: 3, WindowSize: 150, Slide: 40})
	if err != nil {
		t.Fatal(err)
	}

	workloads := []struct {
		label  string
		q      *pattern.Query
		events []event.Event
	}{
		{"q1", q1, nyse},
		{"q3-consume-all", q3, random},
	}
	const k = 4
	for _, wl := range workloads {
		want := runSequential(t, wl.q, wl.events)
		if len(want) == 0 {
			t.Fatalf("%s produced no matches; test is vacuous", wl.label)
		}
		for _, pol := range schedPolicies(k) {
			t.Run(wl.label+"/"+pol.label, func(t *testing.T) {
				cfg := Config{Instances: k, BatchSize: 32, ConsistencyCheckEvery: 8}
				pol.apply(&cfg)
				got, eng := runSpectre(t, wl.q, wl.events, cfg)
				assertSameOutput(t, pol.label, got, want)
				m := eng.MetricsSnapshot()
				if m.SlotCyclesActive == 0 {
					t.Fatal("slot-utilization counters must be populated")
				}
				if u := m.SlotUtilization(); u < 0 || u > 1 {
					t.Fatalf("slot utilization %f out of [0, 1] (busy/active skewed across a resize?)", u)
				}
				if pol.label == "oscillating" && m.PolicyResizes == 0 {
					t.Fatal("the oscillating policy must have resized the pool")
				}
			})
		}
	}
}

// TestPolicyEquivalencePool runs the same cross-policy check through the
// pool-driven Runtime path (cooperative splitter + slot steps instead of
// dedicated goroutines).
func TestPolicyEquivalencePool(t *testing.T) {
	reg := event.NewRegistry()
	events := dataset.NYSE(reg, dataset.NYSEConfig{Symbols: 30, Leaders: 3, Minutes: 100, Seed: 19})
	q, err := queries.Q1(reg, queries.Q1Config{Q: 6, WindowSize: 250, Leaders: 3})
	if err != nil {
		t.Fatal(err)
	}
	want := runSequential(t, q, events)
	if len(want) == 0 {
		t.Fatal("workload produced no matches; test is vacuous")
	}
	const k = 3
	for _, pol := range schedPolicies(k) {
		t.Run(pol.label, func(t *testing.T) {
			cfg := Config{Instances: k, BatchSize: 32}
			pol.apply(&cfg)
			rt := NewRuntime(RuntimeConfig{Workers: 2})
			defer rt.Close()
			var got []event.Complex
			h, err := rt.Submit(q, cfg, nil, 1, func(ce event.Complex) {
				got = append(got, ce)
			}, nil)
			if err != nil {
				t.Fatal(err)
			}
			for _, ev := range events {
				if err := h.Feed(t.Context(), ev); err != nil {
					t.Fatal(err)
				}
			}
			h.Drain()
			assertSameOutput(t, pol.label, got, want)
		})
	}
}

// stuckShard builds a shard over two count windows with the stream
// ended, whose first window's root version is stranded exactly at the
// window end boundary (pos == EndSeq) without having run its window-end
// logic — the state a slot-pool shrink can leave behind when it
// withdraws a slot between batches.
func stuckShard(t *testing.T, factory func() sched.Policy) *shardState {
	t.Helper()
	reg := event.NewRegistry()
	ta, tb := reg.TypeID("A"), reg.TypeID("B")
	p := pattern.Seq("stuck",
		pattern.Step{Name: "A", Types: []event.Type{ta}, Consume: true},
		pattern.Step{Name: "B", Types: []event.Type{tb}, Consume: true},
	)
	q := &pattern.Query{
		Name:    "stuck",
		Pattern: *p,
		Window: pattern.WindowSpec{
			StartKind: pattern.StartEvery, Every: 64,
			EndKind: pattern.EndCount, Count: 64,
		},
	}
	cfg := Config{Instances: 4}
	cfg.Sched = sched.Config{MaxSlots: 4}
	cfg.SchedFactory = factory
	prog, err := compile(q, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := newShard(prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	// 80 events: window [0,64) resolves its end inside the stream,
	// window [64,128) is cut short by stream end.
	queue := newShardQueue(1024)
	s.begin(queue, nil)
	for i := 0; i < 80; i++ {
		ty := ta
		if i%2 == 1 {
			ty = tb
		}
		if err := queue.push(t.Context(), event.Event{TS: int64(i), Type: ty}); err != nil {
			t.Fatal(err)
		}
	}
	queue.close()
	// Ingest everything (one splitter cycle ingests up to IngestBatch,
	// default 1024) so both windows exist and input is done.
	s.splitCycle()
	if !s.inputDone.Load() {
		t.Fatal("input must be done after ingesting the closed queue")
	}
	root := s.tree.Root()
	if root == nil {
		t.Fatal("no root window")
	}
	wv := root.WV
	end := wv.Win.EndSeq()
	if end != 64 {
		t.Fatalf("first window end = %d, want 64", end)
	}
	// Strand the root version at the boundary: all input processed, the
	// window-end logic not yet run, no slot assignment.
	wv.Mu.Lock()
	wv.State = s.prog.compiled.NewState()
	wv.SetPos(end)
	wv.Mu.Unlock()
	if on := wv.ScheduledOn(); on >= 0 {
		s.assigned[on] = nil
		s.slots[on].wv.Store(nil)
		wv.SetScheduledOn(-1)
	}
	return s
}

// TestEndBoundaryEligibleAfterShrink reproduces the pos == end strand
// under a shrunken slot pool and asserts the end-of-stream eligibility
// extension still offers the version one final scheduling round — the
// run must drain instead of deadlocking the root chain.
func TestEndBoundaryEligibleAfterShrink(t *testing.T) {
	// The policy pins the pool to a single slot: the shrunken regime.
	s := stuckShard(t, func() sched.Policy {
		return &oscPolicy{inner: sched.Config{}.New(1, 256), period: 1 << 30, loK: 1, hiK: 1, loSpec: 256, hiSpec: 256}
	})
	for i := 0; i < 10000 && !s.runComplete(); i++ {
		s.splitCycle()
		for j, n := 0, int(s.activeSlots.Load()); j < n; j++ {
			s.slotStep(j)
		}
	}
	if !s.runComplete() {
		root := s.tree.Root()
		t.Fatalf("run deadlocked; root version pos=%d end=%d finished=%v",
			root.WV.Pos(), root.WV.Win.EndSeq(), root.WV.Finished())
	}
}

// TestSlotPoolParksIdleSlots is the white-box park check: when the
// adaptive policy shrinks the pool, the dedicated goroutines of the
// withdrawn slots must block on their wake channels — zero loop
// iterations, zero wake-ups — until the pool grows back.
func TestSlotPoolParksIdleSlots(t *testing.T) {
	var grow atomic.Bool
	factory := func() sched.Policy {
		return policyFunc(func() sched.Decision {
			if grow.Load() {
				return sched.Decision{Slots: 4, Spec: 256}
			}
			return sched.Decision{Slots: 1, Spec: 256}
		})
	}
	reg := event.NewRegistry()
	ta := reg.TypeID("A")
	p := pattern.Seq("park", pattern.Step{Name: "A", Types: []event.Type{ta}})
	q := &pattern.Query{
		Name:    "park",
		Pattern: *p,
		Window: pattern.WindowSpec{
			StartKind: pattern.StartEvery, Every: 8,
			EndKind: pattern.EndCount, Count: 8,
		},
	}
	cfg := Config{Instances: 4}
	cfg.SchedFactory = factory
	prog, err := compile(q, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := newShard(prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	queue := newShardQueue(1024)
	s.begin(queue, nil)

	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := range s.slots {
			go s.slotLoop(i, stop)
		}
	}()
	<-done
	defer close(stop)

	// One scheduling cycle applies the shrink to 1 slot.
	s.splitCycle()
	if got := int(s.activeSlots.Load()); got != 1 {
		t.Fatalf("active slots = %d, want 1", got)
	}
	// Give the withdrawn goroutines time to observe the shrink and park.
	time.Sleep(20 * time.Millisecond)
	var parked [4]uint64
	for i := 1; i < 4; i++ {
		parked[i] = s.slots[i].loops.Load()
	}
	active0 := s.slots[0].loops.Load()
	time.Sleep(50 * time.Millisecond)
	for i := 1; i < 4; i++ {
		if now := s.slots[i].loops.Load(); now != parked[i] {
			t.Fatalf("parked slot %d iterated (%d -> %d); wake-ups must be zero", i, parked[i], now)
		}
	}
	if now := s.slots[0].loops.Load(); now == active0 {
		t.Fatal("the active slot must keep iterating while parked slots freeze")
	}

	// Grow back: the parked goroutines must wake and iterate again.
	grow.Store(true)
	s.splitCycle()
	if got := int(s.activeSlots.Load()); got != 4 {
		t.Fatalf("active slots after grow = %d, want 4", got)
	}
	deadline := time.Now().Add(2 * time.Second)
	for i := 1; i < 4; i++ {
		for s.slots[i].loops.Load() == parked[i] {
			if time.Now().After(deadline) {
				t.Fatalf("slot %d did not wake after the pool grew", i)
			}
			time.Sleep(time.Millisecond)
		}
	}
}

// TestAdaptiveEngineShrinksOnThisMachine runs the adaptive policy on a
// real workload and checks the control plane actually acts: with the
// useful-parallelism cap pinned to 1, the pool must shrink from its
// initial 4 slots and record the resize.
func TestAdaptiveEngineShrinksOnThisMachine(t *testing.T) {
	reg := event.NewRegistry()
	events := dataset.NYSE(reg, dataset.NYSEConfig{Symbols: 30, Leaders: 3, Minutes: 80, Seed: 29})
	q, err := queries.Q1(reg, queries.Q1Config{Q: 5, WindowSize: 200, Leaders: 3})
	if err != nil {
		t.Fatal(err)
	}
	want := runSequential(t, q, events)
	cfg := Config{Instances: 4}
	cfg.Sched = sched.Config{Kind: sched.Adaptive, MinSlots: 1, MaxSlots: 4, AdjustEvery: 8, Procs: 1}
	got, eng := runSpectre(t, q, events, cfg)
	assertSameOutput(t, "adaptive", got, want)
	m := eng.MetricsSnapshot()
	if m.PolicyResizes == 0 {
		t.Fatal("adaptive policy capped at 1 proc must have shrunk the 4-slot pool")
	}
	if m.CurSlots != 1 {
		t.Fatalf("final slot count = %d, want 1", m.CurSlots)
	}
	if u := m.SlotUtilization(); u <= 0 || u > 1 {
		t.Fatalf("slot utilization %f out of range", u)
	}
}

// policyFunc adapts a decision function into a sched.Policy with top-k
// selection.
type policyFunc func() sched.Decision

func (f policyFunc) Select(env sched.Env, k int, out []*deptree.WindowVersion) []*deptree.WindowVersion {
	return env.Tree.TopK(k, env.Prob, env.Eligible, out)
}

func (f policyFunc) Tune(sched.Signals) sched.Decision { return f() }
