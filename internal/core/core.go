// Package core implements the SPECTRE runtime (paper §3): a splitter
// goroutine that ingests the event stream, forms windows, maintains the
// dependency tree and schedules the top-k speculative window versions onto
// k operator-instance goroutines that process them in parallel
// (Figures 7 and 8).
//
// Responsibilities are divided exactly as in the paper's shared-memory
// architecture (Figure 2):
//
//   - The splitter owns the event arena (single writer), the window
//     manager, the dependency tree, the Markov model, the global consumed
//     set and in-order emission.
//   - Operator instances process their assigned window version in batches
//     under the version's mutex, perform the periodic consistency checks
//     of Fig. 8 (lines 31-45) and roll back on violations.
//   - Instances report consumption-group lifecycle events ("the function
//     calls of the operator instances on the dependency tree are
//     buffered") through a FIFO feedback queue that the splitter drains
//     once per maintenance/scheduling cycle.
//
// Beyond the paper, the runtime adds a final validation gate: when a
// window version becomes the tree root (all speculation on its path
// resolved), the splitter verifies that the version processed exactly the
// finally-consumed event set; on violation the version is reprocessed
// deterministically before anything is emitted. This makes the delivered
// stream equal to sequential processing unconditionally — speculation is
// purely a performance mechanism (see DESIGN.md §4.2).
package core

import (
	"errors"
	"fmt"
	"sync"

	"github.com/spectrecep/spectre/internal/deptree"
	"github.com/spectrecep/spectre/internal/durable"
	"github.com/spectrecep/spectre/internal/event"
	"github.com/spectrecep/spectre/internal/markov"
	"github.com/spectrecep/spectre/internal/pattern"
	"github.com/spectrecep/spectre/internal/sched"
)

// ErrOverloaded is the sentinel matched (via errors.Is) by every
// *OverloadError: a non-blocking admission attempt found the shard queue
// full. Callers shed load or retry; blocking Feed never returns it.
var ErrOverloaded = errors.New("core: shard queue is full")

// OverloadError reports a rejected non-blocking admission (TryFeed): the
// target shard's intake queue was at capacity. It matches ErrOverloaded
// with errors.Is, so load-shedding callers need not depend on the struct.
type OverloadError struct {
	Query   string // query name, when the handle is named ("" otherwise)
	Shard   int    // shard index the event routed to
	Pending int    // events queued on that shard at rejection time
	Cap     int    // the shard queue's capacity
}

func (e *OverloadError) Error() string {
	if e.Query != "" {
		return fmt.Sprintf("core: query %q shard %d queue is full (%d/%d events pending)", e.Query, e.Shard, e.Pending, e.Cap)
	}
	return fmt.Sprintf("core: shard %d queue is full (%d/%d events pending)", e.Shard, e.Pending, e.Cap)
}

// Is reports ErrOverloaded equivalence for errors.Is.
func (e *OverloadError) Is(target error) bool { return target == ErrOverloaded }

// Config parameterizes an Engine. The zero value selects the defaults
// documented on each field.
type Config struct {
	// Instances is k, the number of operator instances (default 4).
	Instances int
	// Predictor overrides the completion-probability model. Nil selects a
	// Markov model with the Markov config below (paper default).
	Predictor markov.Predictor
	// Markov configures the default Markov model (α = 0.7, ℓ = 10 as in
	// the paper's evaluation when left zero).
	Markov markov.Config
	// ConsistencyCheckEvery is the consistency-check frequency in
	// processed events (paper Fig. 8 `consistencyCheckFreq`; default 64).
	ConsistencyCheckEvery int
	// BatchSize is the number of events an operator instance processes
	// per lock acquisition (default 256).
	BatchSize int
	// CheckpointEvery is the matcher-state checkpoint interval in raw
	// stream positions: while processing a window version, a deep-copy
	// checkpoint of the matcher state (plus the consumption bookkeeping
	// prefix) is recorded every CheckpointEvery positions. Fresh
	// speculative versions of the same window are seeded from the latest
	// checkpoint at or before their divergence point and replay only the
	// suffix, and rollbacks restart from the latest still-consistent
	// prefix instead of the window start. 0 selects the default
	// (BatchSize); negative disables checkpointing entirely.
	CheckpointEvery int
	// IngestBatch is the number of events the splitter ingests per cycle
	// (default 1024).
	IngestBatch int
	// MaxTreeSize pauses ingestion while the dependency tree holds more
	// window versions (backpressure guard; default 16384). Ingestion
	// always continues while the root window itself is incomplete, so the
	// pipeline cannot deadlock.
	MaxTreeSize int
	// MaxSpeculation caps the dependency tree's speculative growth
	// (default 256): once the tree holds this many window versions, new
	// consumption groups are no longer speculated on (treated as
	// abandoned). The final validation gate reprocesses deterministically
	// when such a group completes after all, so the cap bounds tree
	// explosion on adversarial consume-heavy workloads without affecting
	// the delivered output. The cap is absolute: a stream that keeps
	// more of its windows than this in flight at once runs unspeculated
	// (correct, near-sequential) until the backlog drains — raise the
	// cap for such window-heavy workloads.
	MaxSpeculation int
	// Sched selects the scheduling policy of every shard (which window
	// versions get the operator slots and how the slot pool and
	// speculation budget are sized at runtime). The zero value is the
	// paper's static top-k policy with Instances slots. MaxSpeculation
	// and Instances remain the hard ceilings of the adaptive policy.
	Sched sched.Config
	// SchedFactory overrides Sched with a custom per-shard policy
	// (white-box tests and embedders). Each call must return a fresh
	// instance: a policy is owned by one shard's splitter. The slot-pool
	// ceiling still comes from Instances and Sched.MaxSlots.
	SchedFactory func() sched.Policy
	// Partition overrides the query's PARTITION BY specification. It is
	// interpreted by the public Runtime layer (core itself never routes);
	// a single Engine ignores it.
	Partition *pattern.PartitionSpec
	// Shards overrides the shard count for partitioned Runtime queries;
	// 0 defers to the partition spec, then to the runtime default.
	Shards int
	// QueueCap bounds the pending backlog of each shard intake queue
	// (default 1<<16 events). A full queue blocks Feed and rejects
	// TryFeed with an *OverloadError — unless Shed is on, in which case
	// low-utility events are dropped before the queue ever fills.
	QueueCap int
	// Shed enables utility-driven load shedding at the intake queue
	// (internal/shed, DESIGN.md §10): when a shard queue's depth crosses
	// a watermark, the lowest-utility events are dropped instead of
	// blocking Feed or failing TryFeed. Off by default — shedding trades
	// completeness for bounded latency, which only the caller may decide.
	Shed bool
	// ShedScorer overrides the shedder's utility estimator with a fixed
	// per-type score (benchmarks: a constant scorer is the uniform
	// random-drop baseline). Only read when Shed is set.
	ShedScorer func(event.Type) float64
	// Weight is the query's share of a shared runtime's processors under
	// the admission arbiter (WithWeight). 0 means the query does not
	// opt into arbitration unless it sets a latency target.
	Weight float64
	// PlanDisabled skips the cost-based planner (internal/plan): the
	// query executes verbatim as lowered by the builder. The planner is
	// on by default; its rewrites are output-invariant.
	PlanDisabled bool
	// SchedSet records that the submitter pinned the scheduling policy
	// explicitly (WithScheduler and friends). When false, the public
	// runtime lets the planner pick Sched.Kind from the estimated
	// per-event cost.
	SchedSet bool
	// Reg optionally resolves event-type names in plan explanations
	// (plan.Explain / the metrics endpoint). Never read on the hot path.
	Reg *event.Registry
	// Durable persists per-shard query state (ingest journal, matcher
	// checkpoints, root-pop cuts, emission watermarks) through a
	// write-ahead log so the query survives a crash (DESIGN.md §11).
	// Persistence runs on a per-shard persister goroutine off the hot
	// path; only the pre-delivery watermark commit synchronizes with the
	// splitter. Requires Reg (records carry the type/field name tables)
	// and the Runtime Submit path. Nil disables durability.
	Durable durable.Store
	// PreStamped declares that the feeder stamps every event's Seq with
	// its raw-substream position before it reaches the handle — an
	// upstream stage (the cluster coordinator's plan pushdown) already
	// ran the intake prefilter and spent the dropped positions. The
	// engine runs in stamped mode (arena gaps for dropped positions) but
	// the feed layer neither filters nor re-stamps: wire-carried
	// positions are trusted verbatim. Positions must be strictly
	// increasing per shard.
	PreStamped bool
	// OnAdvance, when set, is notified after every root pop with the new
	// durable boundary: no match emitted after the call will have a
	// DetectedAt below it. Calls are ordered with the emit callback — on
	// the durable path the notification rides the persister FIFO behind
	// the deliveries it follows, on the non-durable path it fires on the
	// splitter right after the pop's emissions. The distributed runtime
	// turns these into per-shard progress watermarks so the ordered merge
	// can release buffered matches from other shards without waiting for
	// this shard's next match.
	OnAdvance func(boundary uint64)
	// Err carries the first invalid-option error; constructors check it
	// before using any other field. Options record violations here (the
	// option-function signature has no error return).
	Err error
}

// SetError records the first option-validation error. Later errors are
// dropped: the first bad option is the one the caller should hear about.
func (c *Config) SetError(err error) {
	if c.Err == nil {
		c.Err = err
	}
}

func (c *Config) setDefaults() {
	if c.Instances <= 0 {
		c.Instances = 4
	}
	if c.ConsistencyCheckEvery <= 0 {
		c.ConsistencyCheckEvery = 64
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 256
	}
	if c.CheckpointEvery == 0 {
		c.CheckpointEvery = c.BatchSize
	}
	if c.IngestBatch <= 0 {
		c.IngestBatch = 1024
	}
	if c.MaxTreeSize <= 0 {
		c.MaxTreeSize = 16384
	}
	if c.MaxSpeculation <= 0 {
		c.MaxSpeculation = 256
	}
	if c.QueueCap <= 0 {
		c.QueueCap = defaultQueueCap
	}
}

// Metrics exposes runtime counters. All fields are monotone totals
// gathered during Run; read them with Engine.MetricsSnapshot.
type Metrics struct {
	EventsIngested uint64
	// FilteredEvents counts events dropped by the planner's type-indexed
	// intake prefilter before touching the shard queue or the arena.
	// Kept strictly separate from EventsIngested: fed = ingested +
	// filtered on the intake-filtered path.
	FilteredEvents uint64
	// ShedEvents counts events dropped by the load shedder (WithShedding)
	// because the shard queue crossed its watermark. Disjoint from
	// FilteredEvents: fed = ingested + filtered + shed.
	ShedEvents      uint64
	EventsProcessed uint64 // per-version processing, including speculation
	Cycles          uint64 // splitter maintenance+scheduling cycles (Fig. 10(c))
	WindowsOpened   uint64
	VersionsCreated uint64
	VersionsDropped uint64
	CGsCreated      uint64
	CGsCompleted    uint64
	CGsAbandoned    uint64
	Matches         uint64 // complex events emitted
	EventsConsumed  uint64
	Rollbacks       uint64
	GateReprocessed uint64 // final-gate deterministic reprocessing (≈0)
	MaxTreeSize     int    // high-water mark of window versions (Fig. 10(f))
	SchedulesIssued uint64 // top-k assignments handed to instances
	Checkpoints     uint64 // matcher-state checkpoints recorded
	VersionsSeeded  uint64 // fresh versions seeded from a checkpoint
	SeededEvents    uint64 // window positions skipped through seeding
	PartialRolls    uint64 // rollbacks restarted from a checkpoint

	// Control-plane counters (the scheduling layer).
	PolicyResizes    uint64 // slot-pool / speculation-budget resizes applied
	SlotCyclesActive uint64 // Σ over cycles of the active (unparked) slot count
	SlotCyclesBusy   uint64 // Σ over cycles of active slots holding an assignment
	CurSlots         int    // current active slot count (gauge; Merge sums shards)
	CurSpeculation   int    // current speculation budget (gauge; Merge sums shards)

	// Durability counters (WithDurability, DESIGN.md §11). All zero when
	// no durable store is configured.
	DurableAppends     uint64 // WAL records handed to the store
	DurableSyncs       uint64 // explicit WAL fsyncs (watermark commits)
	DurableCkptDropped uint64 // checkpoint persists skipped: persister behind
	DurableErrors      uint64 // WAL write errors; first one breaks durability
	ReplayedEvents     uint64 // journal events replayed on recovery
	SuppressedMatches  uint64 // already-delivered matches suppressed on recovery

	// Root-emission latency gauges: streaming quantile estimates of the
	// time from an event's ingestion to the root window version covering
	// it being finalized, in seconds. Zero until the first root pops;
	// Merge takes the worst shard (a per-query SLO is only as good as
	// its slowest shard).
	EmitLagP50 float64
	EmitLagP99 float64
}

// SlotUtilization reports the cycle-weighted fraction of active slots
// that held an assignment — the load signal the adaptive policy resizes
// on. 1.0 means every unparked slot was busy every cycle.
func (m *Metrics) SlotUtilization() float64 {
	if m.SlotCyclesActive == 0 {
		return 0
	}
	return float64(m.SlotCyclesBusy) / float64(m.SlotCyclesActive)
}

// Merge folds o into m: counters add, high-water marks take the maximum.
// Used to aggregate per-shard metrics into per-handle or per-runtime
// totals.
func (m *Metrics) Merge(o *Metrics) {
	m.EventsIngested += o.EventsIngested
	m.FilteredEvents += o.FilteredEvents
	m.ShedEvents += o.ShedEvents
	m.EventsProcessed += o.EventsProcessed
	m.Cycles += o.Cycles
	m.WindowsOpened += o.WindowsOpened
	m.VersionsCreated += o.VersionsCreated
	m.VersionsDropped += o.VersionsDropped
	m.CGsCreated += o.CGsCreated
	m.CGsCompleted += o.CGsCompleted
	m.CGsAbandoned += o.CGsAbandoned
	m.Matches += o.Matches
	m.EventsConsumed += o.EventsConsumed
	m.Rollbacks += o.Rollbacks
	m.GateReprocessed += o.GateReprocessed
	if o.MaxTreeSize > m.MaxTreeSize {
		m.MaxTreeSize = o.MaxTreeSize
	}
	m.SchedulesIssued += o.SchedulesIssued
	m.Checkpoints += o.Checkpoints
	m.VersionsSeeded += o.VersionsSeeded
	m.SeededEvents += o.SeededEvents
	m.PartialRolls += o.PartialRolls
	m.PolicyResizes += o.PolicyResizes
	m.SlotCyclesActive += o.SlotCyclesActive
	m.SlotCyclesBusy += o.SlotCyclesBusy
	m.CurSlots += o.CurSlots
	m.CurSpeculation += o.CurSpeculation
	m.DurableAppends += o.DurableAppends
	m.DurableSyncs += o.DurableSyncs
	m.DurableCkptDropped += o.DurableCkptDropped
	m.DurableErrors += o.DurableErrors
	m.ReplayedEvents += o.ReplayedEvents
	m.SuppressedMatches += o.SuppressedMatches
	if o.EmitLagP50 > m.EmitLagP50 {
		m.EmitLagP50 = o.EmitLagP50
	}
	if o.EmitLagP99 > m.EmitLagP99 {
		m.EmitLagP99 = o.EmitLagP99
	}
}

// metricsBox guards the metrics counters shared by the splitter and the
// operator instances.
type metricsBox struct {
	mu sync.Mutex
	m  Metrics
}

func (b *metricsBox) add(f func(*Metrics)) {
	b.mu.Lock()
	f(&b.m)
	b.mu.Unlock()
}

func (b *metricsBox) snapshot() Metrics {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.m
}

// msgKind enumerates instance→splitter feedback messages.
type msgKind int

const (
	// msgCGCreated: a new consumption group must be inserted into the
	// dependency tree (paper consumptionGroupCreated).
	msgCGCreated msgKind = iota + 1
	// msgCGResolved: the group's outcome is published on the CG; the tree
	// must splice (consumptionGroupCompleted/Abandoned).
	msgCGResolved
	// msgRolledBack: the version was rolled back; its dependent subtree
	// must be rebuilt.
	msgRolledBack
	// msgStats carries batched Markov transition observations.
	msgStats
)

type statEntry struct {
	from, to, count int
}

// statsPool recycles the entry slices carried by msgStats messages: the
// worker fills one per flushed batch, the splitter returns it after
// applying.
var statsPool = sync.Pool{
	New: func() any { s := make([]statEntry, 0, 64); return &s },
}

func newStatEntries() []statEntry {
	return (*statsPool.Get().(*[]statEntry))[:0]
}

func putStatEntries(s []statEntry) {
	s = s[:0]
	statsPool.Put(&s)
}

type msg struct {
	kind  msgKind
	wv    *deptree.WindowVersion
	cg    *deptree.CG
	stats []statEntry
}

// feedbackQueue is the shared MPSC queue between operator instances and
// the splitter. Instances append whole batches while holding their window
// version's mutex, which makes the queue FIFO per window version even when
// a version migrates between instances.
type feedbackQueue struct {
	mu  sync.Mutex
	buf []msg
}

func (q *feedbackQueue) push(batch []msg) {
	if len(batch) == 0 {
		return
	}
	q.mu.Lock()
	q.buf = append(q.buf, batch...)
	q.mu.Unlock()
}

// drain moves all queued messages into dst (reusing its capacity).
func (q *feedbackQueue) drain(dst []msg) []msg {
	q.mu.Lock()
	dst = append(dst, q.buf...)
	for i := range q.buf {
		q.buf[i] = msg{}
	}
	q.buf = q.buf[:0]
	q.mu.Unlock()
	return dst
}

func (q *feedbackQueue) empty() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.buf) == 0
}
