// Package shard implements key-based stream partitioning for the
// multi-query SPECTRE runtime: a key extractor per partition spec and a
// hash router that maps every event to one of n shards. Partition-level
// data parallelism composes with SPECTRE's window-level speculation
// because consumption dependencies never cross partition keys.
package shard

import (
	"fmt"
	"math"

	"github.com/spectrecep/spectre/internal/event"
	"github.com/spectrecep/spectre/internal/pattern"
)

// KeyFunc extracts the partition key of an event as a raw 64-bit value.
// The router finalizes it with a mixing hash, so key functions may return
// low-entropy values (small integers, float bit patterns) directly.
type KeyFunc func(*event.Event) uint64

// ByType keys on the interned event type (e.g. the stock symbol).
func ByType() KeyFunc {
	return func(ev *event.Event) uint64 { return uint64(ev.Type) }
}

// ByField keys on the bit pattern of the idx-th payload field.
func ByField(idx int) KeyFunc {
	return func(ev *event.Event) uint64 { return math.Float64bits(ev.Field(idx)) }
}

// FromSpec builds the key extractor for a partition spec. Field-based
// specs must be resolved (Field >= 0); use event.Registry.FieldIndex to
// resolve FieldName first.
func FromSpec(spec *pattern.PartitionSpec) (KeyFunc, error) {
	if spec == nil {
		return nil, fmt.Errorf("shard: nil partition spec")
	}
	if spec.ByType {
		return ByType(), nil
	}
	if spec.Field < 0 {
		return nil, fmt.Errorf("shard: unresolved partition field %q", spec.FieldName)
	}
	return ByField(spec.Field), nil
}

// mix64 is the splitmix64 finalizer: a fast bijective mixer that spreads
// low-entropy keys (dense type ids, float bit patterns) uniformly.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Router routes events onto n shards by hashed key.
type Router struct {
	n   int
	key KeyFunc
}

// NewRouter builds a router over n shards; n < 1 is clamped to 1.
func NewRouter(n int, key KeyFunc) *Router {
	if n < 1 {
		n = 1
	}
	return &Router{n: n, key: key}
}

// Shards returns the shard count.
func (r *Router) Shards() int { return r.n }

// Route returns the shard index of ev: hash(key) % shards.
func (r *Router) Route(ev *event.Event) int {
	if r.n == 1 || r.key == nil {
		return 0
	}
	return int(mix64(r.key(ev)) % uint64(r.n))
}

// Split partitions events into per-shard substreams in stream order. It
// is the reference partitioning used by tests and benchmarks to cross-
// check a sharded run against standalone per-partition runs.
func (r *Router) Split(events []event.Event) [][]event.Event {
	out := make([][]event.Event, r.n)
	for i := range events {
		s := r.Route(&events[i])
		out[s] = append(out[s], events[i])
	}
	return out
}
