package shard

import (
	"testing"

	"github.com/spectrecep/spectre/internal/event"
	"github.com/spectrecep/spectre/internal/pattern"
)

func TestRouterDeterministicAndInRange(t *testing.T) {
	r := NewRouter(8, ByType())
	for ty := 1; ty <= 100; ty++ {
		ev := &event.Event{Type: event.Type(ty)}
		s1 := r.Route(ev)
		s2 := r.Route(ev)
		if s1 != s2 {
			t.Fatalf("type %d routed to %d then %d", ty, s1, s2)
		}
		if s1 < 0 || s1 >= 8 {
			t.Fatalf("type %d routed out of range: %d", ty, s1)
		}
	}
}

func TestRouterSpreadsKeys(t *testing.T) {
	// Dense type ids must not all collapse onto few shards.
	r := NewRouter(8, ByType())
	hit := make(map[int]int)
	for ty := 1; ty <= 256; ty++ {
		hit[r.Route(&event.Event{Type: event.Type(ty)})]++
	}
	if len(hit) != 8 {
		t.Fatalf("256 keys hit only %d of 8 shards", len(hit))
	}
	for s, n := range hit {
		if n > 3*256/8 {
			t.Fatalf("shard %d got %d of 256 keys (badly skewed)", s, n)
		}
	}
}

func TestByFieldRouting(t *testing.T) {
	r := NewRouter(4, ByField(1))
	a := &event.Event{Fields: []float64{0, 42}}
	b := &event.Event{Fields: []float64{99, 42}}
	if r.Route(a) != r.Route(b) {
		t.Fatal("same key field must route to the same shard")
	}
}

func TestSingleShardShortCircuit(t *testing.T) {
	r := NewRouter(1, ByType())
	if got := r.Route(&event.Event{Type: 7}); got != 0 {
		t.Fatalf("single-shard router returned %d", got)
	}
	if NewRouter(0, ByType()).Shards() != 1 {
		t.Fatal("shard count must clamp to 1")
	}
}

func TestSplitPreservesOrderAndTotal(t *testing.T) {
	events := make([]event.Event, 100)
	for i := range events {
		events[i] = event.Event{Seq: uint64(i), Type: event.Type(1 + i%7)}
	}
	r := NewRouter(3, ByType())
	buckets := r.Split(events)
	total := 0
	for s, bucket := range buckets {
		total += len(bucket)
		for i := 1; i < len(bucket); i++ {
			if bucket[i].Seq <= bucket[i-1].Seq {
				t.Fatalf("shard %d bucket out of stream order", s)
			}
		}
		for i := range bucket {
			if got := r.Route(&bucket[i]); got != s {
				t.Fatalf("event in bucket %d routes to %d", s, got)
			}
		}
	}
	if total != len(events) {
		t.Fatalf("split lost events: %d of %d", total, len(events))
	}
}

func TestFromSpec(t *testing.T) {
	if _, err := FromSpec(nil); err == nil {
		t.Fatal("nil spec must fail")
	}
	if _, err := FromSpec(&pattern.PartitionSpec{Field: -1, FieldName: "price"}); err == nil {
		t.Fatal("unresolved field must fail")
	}
	key, err := FromSpec(&pattern.PartitionSpec{ByType: true, Field: -1})
	if err != nil {
		t.Fatal(err)
	}
	if key(&event.Event{Type: 9}) != 9 {
		t.Fatal("ByType key must be the type id")
	}
	key, err = FromSpec(&pattern.PartitionSpec{Field: 0})
	if err != nil {
		t.Fatal(err)
	}
	if key(&event.Event{Fields: []float64{1.5}}) == key(&event.Event{Fields: []float64{2.5}}) {
		t.Fatal("distinct field values must produce distinct keys")
	}
}
