package pattern

import (
	"errors"
	"testing"
	"time"

	"github.com/spectrecep/spectre/internal/event"
)

func twoStep() *Pattern {
	return Seq("p",
		Step{Name: "A", Types: []event.Type{1}},
		Step{Name: "B", Types: []event.Type{2}},
	)
}

func TestValidateNormalizes(t *testing.T) {
	p := twoStep()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.Elements[0].Step.Quant != One {
		t.Fatal("zero quantifier must normalize to One")
	}
	if p.Selection.OnCompletion != StopAfterMatch {
		t.Fatal("zero completion behaviour must normalize to StopAfterMatch")
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []struct {
		name string
		p    *Pattern
		want error
	}{
		{"empty", &Pattern{Name: "e"}, ErrEmptyPattern},
		{"leading negation", &Pattern{Name: "n", Elements: []Element{
			{Kind: ElemStep, Step: Step{Name: "X", Negated: true}},
			{Kind: ElemStep, Step: Step{Name: "B"}},
		}}, ErrLeadingNegation},
		{"empty set", &Pattern{Name: "s", Elements: []Element{
			{Kind: ElemSet},
		}}, ErrBadElement},
		{"set too large", &Pattern{Name: "big", Elements: []Element{
			{Kind: ElemSet, Set: make([]Step, 65)},
		}}, ErrSetTooLarge},
		{"only negations", &Pattern{Name: "neg", Elements: []Element{
			{Kind: ElemStep, Step: Step{Name: "A"}},
		}, Selection: SelectionPolicy{OnCompletion: RestartAfterLeader}}, ErrBadElement},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.p.Validate()
			if err == nil {
				t.Fatal("want error")
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("got %v, want %v", err, tc.want)
			}
		})
	}
}

func TestConsumeHelpers(t *testing.T) {
	p := twoStep()
	p.ConsumeAll()
	if !p.Elements[0].Step.Consume || !p.Elements[1].Step.Consume {
		t.Fatal("ConsumeAll must flag every step")
	}
	if !p.HasConsumption() {
		t.Fatal("HasConsumption after ConsumeAll")
	}
	p.ConsumeNone()
	if p.HasConsumption() {
		t.Fatal("ConsumeNone must clear flags")
	}
	if err := p.ConsumeSteps("B"); err != nil {
		t.Fatal(err)
	}
	if p.Elements[0].Step.Consume || !p.Elements[1].Step.Consume {
		t.Fatal("ConsumeSteps(B) must flag only B")
	}
	if err := p.ConsumeSteps("Z"); err == nil {
		t.Fatal("unknown step must error")
	}
	neg := &Pattern{Name: "n", Elements: []Element{
		{Kind: ElemStep, Step: Step{Name: "A"}},
		{Kind: ElemStep, Step: Step{Name: "X", Negated: true}},
		{Kind: ElemStep, Step: Step{Name: "B"}},
	}}
	if err := neg.ConsumeSteps("X"); err == nil {
		t.Fatal("consuming a negated step must error")
	}
	neg.ConsumeAll()
	if neg.Elements[1].Step.Consume {
		t.Fatal("ConsumeAll must skip negated steps")
	}
}

func TestFlatStepsAndIndex(t *testing.T) {
	p := &Pattern{Name: "f", Elements: []Element{
		{Kind: ElemStep, Step: Step{Name: "A"}},
		{Kind: ElemSet, Set: []Step{{Name: "X"}, {Name: "Y"}}},
		{Kind: ElemStep, Step: Step{Name: "B"}},
	}}
	fs := p.FlatSteps()
	if len(fs) != 4 {
		t.Fatalf("flat steps = %d, want 4", len(fs))
	}
	if p.StepIndex("Y") != 2 || p.StepIndex("B") != 3 || p.StepIndex("nope") != -1 {
		t.Fatal("StepIndex positions")
	}
	if p.MinLength() != 4 {
		t.Fatalf("min length = %d, want 4", p.MinLength())
	}
}

func TestStepMatches(t *testing.T) {
	s := Step{Types: []event.Type{3}, Pred: func(ev *event.Event, _ Binder) bool {
		return ev.TS > 10
	}}
	if s.Matches(&event.Event{Type: 2, TS: 100}, nil) {
		t.Fatal("type filter must reject")
	}
	if s.Matches(&event.Event{Type: 3, TS: 5}, nil) {
		t.Fatal("predicate must reject")
	}
	if !s.Matches(&event.Event{Type: 3, TS: 100}, nil) {
		t.Fatal("must accept")
	}
	open := Step{}
	if !open.MatchesType(99) {
		t.Fatal("empty type filter accepts everything")
	}
}

func TestWindowSpecValidate(t *testing.T) {
	good := []WindowSpec{
		{StartKind: StartEvery, Every: 10, EndKind: EndCount, Count: 100},
		{StartKind: StartOnMatch, EndKind: EndDuration, Duration: time.Second},
	}
	for i, w := range good {
		if err := w.Validate(); err != nil {
			t.Fatalf("good spec %d rejected: %v", i, err)
		}
	}
	bad := []WindowSpec{
		{StartKind: StartEvery, Every: 0, EndKind: EndCount, Count: 1},
		{StartKind: StartEvery, Every: 1, EndKind: EndCount, Count: 0},
		{StartKind: StartOnMatch, EndKind: EndDuration, Duration: 0},
		{EndKind: EndCount, Count: 1},
		{StartKind: StartEvery, Every: 1},
	}
	for i, w := range bad {
		if err := w.Validate(); err == nil {
			t.Fatalf("bad spec %d accepted", i)
		}
	}
}

func TestStartMatches(t *testing.T) {
	w := WindowSpec{
		StartKind:  StartOnMatch,
		StartTypes: []event.Type{1},
		StartPred:  func(ev *event.Event) bool { return ev.TS > 0 },
	}
	if w.StartMatches(&event.Event{Type: 2, TS: 5}) {
		t.Fatal("wrong type must not open")
	}
	if w.StartMatches(&event.Event{Type: 1, TS: 0}) {
		t.Fatal("failing predicate must not open")
	}
	if !w.StartMatches(&event.Event{Type: 1, TS: 5}) {
		t.Fatal("must open")
	}
}

func TestQueryValidatePropagatesNames(t *testing.T) {
	q := &Query{
		Pattern: *twoStep(),
		Window:  WindowSpec{StartKind: StartEvery, Every: 1, EndKind: EndCount, Count: 10},
	}
	q.Pattern.Name = "pat"
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
	if q.Name != "pat" {
		t.Fatalf("query name = %q, want pattern name", q.Name)
	}
}
