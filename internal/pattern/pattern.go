// Package pattern defines the query model: pattern ASTs (sequences,
// Kleene-plus, unordered sets, negations), predicates over event payloads
// and earlier bindings, selection policies, consumption policies (the
// CONSUME clause of the paper's queries, Fig. 9) and window specifications
// (`WITHIN ... FROM ...`).
//
// The model covers the paper's example query Q_E (§2.1) and evaluation
// queries Q1–Q3 (§4.1), and is the common input of the SPECTRE runtime,
// the sequential reference engine and the T-REX-style baseline.
package pattern

import (
	"errors"
	"fmt"
	"time"

	"github.com/spectrecep/spectre/internal/event"
)

// Binder exposes the events already bound by a partial match so that
// predicates can compare the candidate event against earlier steps (e.g.
// `B.x > A.x`). Steps are addressed by their flat index (see
// Pattern.FlatSteps).
type Binder interface {
	// Bound returns the events bound so far to the flat step index, in
	// binding order. It returns nil when the step has no binding yet.
	Bound(step int) []*event.Event
}

// Predicate decides whether a candidate event matches a step given the
// bindings accumulated by the partial match. A nil Predicate matches every
// event (subject to the step's type filter).
type Predicate func(ev *event.Event, b Binder) bool

// StartPredicate decides whether an event opens a new window. It sees no
// bindings because windows are created before pattern detection.
type StartPredicate func(ev *event.Event) bool

// Quantifier describes how many events a step binds.
type Quantifier int

const (
	// One binds exactly one event.
	One Quantifier = iota + 1
	// OneOrMore is the Kleene-plus of the paper's Q2: one event is
	// required, further contiguous matches extend the binding without
	// advancing pattern completion.
	OneOrMore
)

// String implements fmt.Stringer.
func (q Quantifier) String() string {
	switch q {
	case One:
		return "one"
	case OneOrMore:
		return "one-or-more"
	default:
		return fmt.Sprintf("Quantifier(%d)", int(q))
	}
}

// Conjunct is one AND-operand of a step's payload predicate. The query
// builder records the conjunctive structure alongside the folded Pred so
// the planner (internal/plan) can evaluate binding-free conjuncts first
// and reorder the rest by observed selectivity. Conjunct predicates must
// be pure: the matcher may re-evaluate them on rollback and reprocessing.
type Conjunct struct {
	// Pred is the conjunct's predicate.
	Pred Predicate
	// BindingFree marks conjuncts that read only the candidate event —
	// they are always called with a nil Binder and may be hoisted into the
	// intake prefilter.
	BindingFree bool
	// Label describes the conjunct for plan explanations.
	Label string
	// Fields lists every payload field index the predicate can read (on
	// the candidate event or any bound one), valid only when FieldsKnown.
	// The distributed transport projects shipped events down to the union
	// of these sets; an opaque predicate (FieldsKnown false) disables
	// projection for the whole query.
	Fields      []int
	FieldsKnown bool
}

// Step is a single pattern variable: a type filter, an optional payload
// predicate, a quantifier, and flags for negation (the event must NOT
// occur) and consumption (the CONSUME clause lists this variable).
type Step struct {
	// Name is the pattern-variable name (e.g. "MLE", "B").
	Name string
	// Types restricts matching to the listed event types; empty means any
	// type.
	Types []event.Type
	// Pred is the payload predicate; nil accepts every event that passes
	// the type filter.
	Pred Predicate
	// Conjuncts is the conjunctive decomposition of Pred, populated by the
	// query builder (Pred is their AND-fold). Execution uses Pred; the
	// planner reads Conjuncts. Empty for predicates constructed directly.
	Conjuncts []Conjunct
	// Quant is the step quantifier; the zero value is treated as One.
	Quant Quantifier
	// Negated marks a negation: if a matching event occurs while the
	// negation is active, the partial match is abandoned.
	Negated bool
	// Consume marks the step as listed in the CONSUME clause: events bound
	// to it are consumed when the match completes.
	Consume bool
}

// MatchesType reports whether the step's type filter accepts t.
func (s *Step) MatchesType(t event.Type) bool {
	if len(s.Types) == 0 {
		return true
	}
	for _, want := range s.Types {
		if want == t {
			return true
		}
	}
	return false
}

// Matches reports whether the step accepts ev under bindings b.
func (s *Step) Matches(ev *event.Event, b Binder) bool {
	if !s.MatchesType(ev.Type) {
		return false
	}
	if s.Pred == nil {
		return true
	}
	return s.Pred(ev, b)
}

// ElemKind discriminates pattern elements.
type ElemKind int

const (
	// ElemStep is a single (possibly Kleene) step.
	ElemStep ElemKind = iota + 1
	// ElemSet is an unordered conjunction: every member step must bind one
	// event, in any order (the paper's Q3 `SET(X1 ... Xn)`).
	ElemSet
)

// Element is one position of the pattern sequence.
type Element struct {
	Kind ElemKind
	// Step is set when Kind == ElemStep.
	Step Step
	// Set is set when Kind == ElemSet. Members must be quantifier One and
	// non-negated.
	Set []Step
}

// MinLength returns the minimum number of events the element binds.
func (e *Element) MinLength() int {
	switch e.Kind {
	case ElemStep:
		if e.Step.Negated {
			return 0
		}
		return 1 // One and OneOrMore both require at least one event
	case ElemSet:
		return len(e.Set)
	default:
		return 0
	}
}

// CompletionBehavior selects what a run does after emitting a match.
type CompletionBehavior int

const (
	// StopAfterMatch ends detection for the window after the first match
	// (paper default for Q1–Q3: one consumption group per window version).
	StopAfterMatch CompletionBehavior = iota + 1
	// RestartAfterLeader keeps the binding of the first element and resets
	// the rest, so the same leader correlates with further events ("first
	// A, each B" in the paper's Q_E example).
	RestartAfterLeader
	// RestartFresh clears the whole run so a new leader can start a new
	// match in the same window.
	RestartFresh
)

// String implements fmt.Stringer.
func (c CompletionBehavior) String() string {
	switch c {
	case StopAfterMatch:
		return "stop"
	case RestartAfterLeader:
		return "restart-after-leader"
	case RestartFresh:
		return "restart-fresh"
	default:
		return fmt.Sprintf("CompletionBehavior(%d)", int(c))
	}
}

// SelectionPolicy bounds concurrent partial matches in a window and defines
// post-completion behaviour. The paper's evaluations use a single
// consumption group per window version, i.e. MaxConcurrentRuns = 1.
type SelectionPolicy struct {
	// MaxConcurrentRuns caps simultaneously open partial matches per
	// window version; 0 means unlimited.
	MaxConcurrentRuns int
	// OnCompletion selects the post-match behaviour; the zero value is
	// treated as StopAfterMatch.
	OnCompletion CompletionBehavior
}

// Pattern is a complete pattern specification.
type Pattern struct {
	// Name labels detections produced from this pattern.
	Name string
	// Elements is the ordered element sequence.
	Elements []Element
	// Selection is the selection policy.
	Selection SelectionPolicy
}

// FlatStep is a step together with its position in the pattern.
type FlatStep struct {
	Elem   int // element index
	Member int // member index within a set element, -1 for step elements
	Step   *Step
}

// FlatSteps returns all steps (including negated ones) in pattern order.
// The returned index space is the one Binder and parser-compiled
// predicates use.
func (p *Pattern) FlatSteps() []FlatStep {
	var out []FlatStep
	for ei := range p.Elements {
		el := &p.Elements[ei]
		switch el.Kind {
		case ElemStep:
			out = append(out, FlatStep{Elem: ei, Member: -1, Step: &el.Step})
		case ElemSet:
			for mi := range el.Set {
				out = append(out, FlatStep{Elem: ei, Member: mi, Step: &el.Set[mi]})
			}
		}
	}
	return out
}

// StepIndex returns the flat index of the step named name, or -1.
func (p *Pattern) StepIndex(name string) int {
	for i, fs := range p.FlatSteps() {
		if fs.Step.Name == name {
			return i
		}
	}
	return -1
}

// MinLength returns the minimum number of events a complete match binds —
// the δ_max of the Markov completion model.
func (p *Pattern) MinLength() int {
	var n int
	for i := range p.Elements {
		n += p.Elements[i].MinLength()
	}
	return n
}

// ConsumeAll marks every non-negated step as consumed (CONSUME of all
// pattern variables, as in Q1–Q3).
func (p *Pattern) ConsumeAll() {
	for ei := range p.Elements {
		el := &p.Elements[ei]
		if el.Kind == ElemStep {
			if !el.Step.Negated {
				el.Step.Consume = true
			}
			continue
		}
		for mi := range el.Set {
			el.Set[mi].Consume = true
		}
	}
}

// ConsumeNone clears every consume flag (no consumption policy).
func (p *Pattern) ConsumeNone() {
	for ei := range p.Elements {
		el := &p.Elements[ei]
		if el.Kind == ElemStep {
			el.Step.Consume = false
			continue
		}
		for mi := range el.Set {
			el.Set[mi].Consume = false
		}
	}
}

// ConsumeSteps marks exactly the named steps as consumed ("selected B" in
// the paper's Fig. 1(b) is ConsumeSteps("B")). Unknown names are reported
// as an error.
func (p *Pattern) ConsumeSteps(names ...string) error {
	p.ConsumeNone()
	for _, name := range names {
		found := false
		for ei := range p.Elements {
			el := &p.Elements[ei]
			if el.Kind == ElemStep {
				if el.Step.Name == name {
					if el.Step.Negated {
						return fmt.Errorf("pattern %q: cannot consume negated step %q", p.Name, name)
					}
					el.Step.Consume = true
					found = true
				}
				continue
			}
			for mi := range el.Set {
				if el.Set[mi].Name == name {
					el.Set[mi].Consume = true
					found = true
				}
			}
		}
		if !found {
			return fmt.Errorf("pattern %q: CONSUME references unknown step %q", p.Name, name)
		}
	}
	return nil
}

// HasConsumption reports whether any step is consume-flagged.
func (p *Pattern) HasConsumption() bool {
	for _, fs := range p.FlatSteps() {
		if fs.Step.Consume {
			return true
		}
	}
	return false
}

// Validation errors.
var (
	ErrEmptyPattern    = errors.New("pattern: no elements")
	ErrBadElement      = errors.New("pattern: invalid element")
	ErrSetTooLarge     = errors.New("pattern: set element exceeds 64 members")
	ErrLeadingNegation = errors.New("pattern: pattern cannot start with a negated step")
)

// Validate checks structural constraints. It normalizes zero-value
// quantifiers to One and zero-value completion behaviour to StopAfterMatch.
func (p *Pattern) Validate() error {
	if len(p.Elements) == 0 {
		return fmt.Errorf("%w (pattern %q)", ErrEmptyPattern, p.Name)
	}
	if p.Selection.OnCompletion == 0 {
		p.Selection.OnCompletion = StopAfterMatch
	}
	positives := 0
	for ei := range p.Elements {
		el := &p.Elements[ei]
		switch el.Kind {
		case ElemStep:
			if el.Step.Quant == 0 {
				el.Step.Quant = One
			}
			if el.Step.Negated {
				if ei == 0 {
					return fmt.Errorf("%w (pattern %q)", ErrLeadingNegation, p.Name)
				}
				if el.Step.Quant != One {
					return fmt.Errorf("%w: negated step %q must have quantifier one", ErrBadElement, el.Step.Name)
				}
			} else {
				positives++
			}
		case ElemSet:
			if len(el.Set) == 0 {
				return fmt.Errorf("%w: empty set element in pattern %q", ErrBadElement, p.Name)
			}
			if len(el.Set) > 64 {
				return fmt.Errorf("%w (pattern %q, %d members)", ErrSetTooLarge, p.Name, len(el.Set))
			}
			for mi := range el.Set {
				m := &el.Set[mi]
				if m.Quant == 0 {
					m.Quant = One
				}
				if m.Quant != One || m.Negated {
					return fmt.Errorf("%w: set member %q must be a plain step", ErrBadElement, m.Name)
				}
			}
			positives++
		default:
			return fmt.Errorf("%w: element %d of pattern %q has kind %d", ErrBadElement, ei, p.Name, el.Kind)
		}
	}
	if positives == 0 {
		return fmt.Errorf("%w: pattern %q has only negated steps", ErrBadElement, p.Name)
	}
	if p.Selection.OnCompletion == RestartAfterLeader {
		if p.Elements[0].Kind != ElemStep || p.Elements[0].Step.Quant != One {
			return fmt.Errorf("%w: restart-after-leader requires a single-event leading step", ErrBadElement)
		}
		if positives < 2 {
			return fmt.Errorf("%w: restart-after-leader requires at least two positive elements", ErrBadElement)
		}
	}
	return nil
}

// Seq is a convenience constructor for a plain sequence pattern.
func Seq(name string, steps ...Step) *Pattern {
	elems := make([]Element, 0, len(steps))
	for _, s := range steps {
		elems = append(elems, Element{Kind: ElemStep, Step: s})
	}
	return &Pattern{Name: name, Elements: elems}
}

// StartKind discriminates how windows open.
type StartKind int

const (
	// StartEvery opens a window every Every events (count-based slide,
	// `FROM every s events`).
	StartEvery StartKind = iota + 1
	// StartOnMatch opens a window whenever an event passes the start
	// filter (`FROM MLE` in Q1; "whenever an A event occurs" in Q_E).
	StartOnMatch
)

// EndKind discriminates how windows close.
type EndKind int

const (
	// EndCount closes the window after Count events (inclusive of the
	// start event): `WITHIN ws events`.
	EndCount EndKind = iota + 1
	// EndDuration closes the window Duration after the start event's
	// timestamp: `WITHIN 1 min`.
	EndDuration
)

// WindowSpec describes window formation. Windows are contiguous ranges of
// the raw input stream; the splitter fixes their boundaries at split time
// (consumption affects detection inside windows, never their extents).
type WindowSpec struct {
	StartKind StartKind
	// Every is the slide in events for StartEvery.
	Every int
	// StartTypes/StartPred filter the opening event for StartOnMatch;
	// empty types match any type, nil predicate accepts everything.
	StartTypes []event.Type
	StartPred  StartPredicate
	// StartFromStep records that StartPred was derived from the FROM
	// step's own predicate (builder From / parser `FROM var`), so it reads
	// no payload fields beyond that step's conjuncts. A custom start
	// filter (FromFilter) leaves this false and disables transport-level
	// field projection.
	StartFromStep bool

	EndKind EndKind
	// Count is the window size in events for EndCount.
	Count int
	// Duration is the window time scope for EndDuration.
	Duration time.Duration
}

// StartMatches reports whether ev opens a window under StartOnMatch.
func (w *WindowSpec) StartMatches(ev *event.Event) bool {
	if len(w.StartTypes) > 0 {
		ok := false
		for _, t := range w.StartTypes {
			if t == ev.Type {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	if w.StartPred == nil {
		return true
	}
	return w.StartPred(ev)
}

// Validate checks the window specification.
func (w *WindowSpec) Validate() error {
	switch w.StartKind {
	case StartEvery:
		if w.Every <= 0 {
			return fmt.Errorf("window: StartEvery requires positive slide, got %d", w.Every)
		}
	case StartOnMatch:
	default:
		return fmt.Errorf("window: invalid start kind %d", w.StartKind)
	}
	switch w.EndKind {
	case EndCount:
		if w.Count <= 0 {
			return fmt.Errorf("window: EndCount requires positive size, got %d", w.Count)
		}
	case EndDuration:
		if w.Duration <= 0 {
			return fmt.Errorf("window: EndDuration requires positive duration, got %v", w.Duration)
		}
	default:
		return fmt.Errorf("window: invalid end kind %d", w.EndKind)
	}
	return nil
}

// PartitionSpec describes key-partitioned execution (the PARTITION BY
// clause): the input stream is split by a key attribute and every
// partition runs its own independent window formation and detection.
// Consumption dependencies never cross partition keys, so partitioning
// composes with SPECTRE's window-level speculation without touching the
// correctness argument.
type PartitionSpec struct {
	// ByType partitions on the event type (e.g. the stock symbol in the
	// paper's trading workloads): `PARTITION BY TYPE`.
	ByType bool
	// Field is the payload field index to partition on when !ByType. A
	// negative value means the field name has not been resolved against a
	// registry yet (see FieldName).
	Field int
	// FieldName is the payload field name backing Field; kept for
	// diagnostics and for late resolution when Field < 0.
	FieldName string
	// Shards is the preferred shard count; 0 lets the runtime decide
	// (typically GOMAXPROCS).
	Shards int
}

// Validate checks the partition specification.
func (p *PartitionSpec) Validate() error {
	if !p.ByType && p.Field < 0 && p.FieldName == "" {
		return errors.New("partition: neither TYPE nor a payload field given")
	}
	if p.Shards < 0 {
		return fmt.Errorf("partition: negative shard count %d", p.Shards)
	}
	return nil
}

// Query bundles a pattern with its window specification and an optional
// partitioning specification.
type Query struct {
	Name    string
	Pattern Pattern
	Window  WindowSpec
	// Partition is nil for unpartitioned queries.
	Partition *PartitionSpec
}

// Validate checks the query.
func (q *Query) Validate() error {
	if q.Name == "" {
		q.Name = q.Pattern.Name
	}
	if q.Pattern.Name == "" {
		q.Pattern.Name = q.Name
	}
	if err := q.Pattern.Validate(); err != nil {
		return err
	}
	if q.Partition != nil {
		if err := q.Partition.Validate(); err != nil {
			return err
		}
	}
	return q.Window.Validate()
}
