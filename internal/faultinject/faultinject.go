//go:build faultinject

// Package faultinject is the crash-testing harness behind the
// `faultinject` build tag. Production builds compile the no-op twin
// (faultinject_off.go): Enabled reports false, Hit is empty and the
// engine's instrumentation disappears into dead branches.
//
// The crash model is a kill flag, not a panic: Arm names a crash point
// and a countdown; when the engine's instrumentation reaches it, Hit
// atomically sets the killed flag. From that instant a Guard-wrapped
// durable store refuses every write (the dead process's buffered bytes
// never reach disk) and the test sink ignores every delivery (the dead
// process's callbacks never ran). The engine then winds down normally —
// the observable state equals a SIGKILL at that instruction, without
// sacrificing goroutine cleanliness under -race.
package faultinject

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"github.com/spectrecep/spectre/internal/durable"
	"github.com/spectrecep/spectre/internal/event"
)

// Catalog lists every named crash point the engine instruments, for
// tests that iterate all of them. Keep in sync with the Hit call sites
// in internal/core (TestCrashPointCatalog asserts each one fires).
var Catalog = []string{
	"wal.ingest.append",  // persister: journaling an admitted-event batch
	"wal.ckpt.persist",   // persister: writing a checkpoint record
	"wal.cut.append",     // persister: writing a root-pop cut record
	"wal.sync",           // persister: fsync of buffered records
	"emit.before-commit", // splitter: before the watermark commit of a match batch
	"emit.after-deliver", // splitter: after sink delivery of a committed batch
	"recover.prime",      // submit: while priming a shard from recovered state
}

// ErrKilled is returned by Guard-wrapped stores after the kill point.
var ErrKilled = errors.New("faultinject: killed")

var (
	mu     sync.Mutex
	armed  string
	fuse   int64 // hits remaining at the armed point before the kill
	hits   map[string]int64
	killed atomic.Bool
)

// Enabled reports whether the harness is compiled in.
func Enabled() bool { return true }

// Arm schedules a kill at the n-th future Hit of point (n >= 1).
func Arm(point string, n int) {
	mu.Lock()
	defer mu.Unlock()
	armed = point
	fuse = int64(n)
	killed.Store(false)
}

// Reset disarms the harness and clears counters and the kill flag.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	armed = ""
	fuse = 0
	hits = nil
	killed.Store(false)
}

// Hit marks one pass through a named crash point.
func Hit(point string) {
	mu.Lock()
	if hits == nil {
		hits = make(map[string]int64)
	}
	hits[point]++
	if armed == point && fuse > 0 {
		fuse--
		if fuse == 0 {
			killed.Store(true)
		}
	}
	mu.Unlock()
}

// Hits returns how often point was passed since the last Reset.
func Hits(point string) int64 {
	mu.Lock()
	defer mu.Unlock()
	return hits[point]
}

// Killed reports whether the kill point was reached.
func Killed() bool { return killed.Load() }

// Guard wraps a durable store so that every write issued after the kill
// point fails with ErrKilled — the dead process writes nothing more.
func Guard(s durable.Store) durable.Store { return &guardStore{s: s} }

type guardStore struct{ s durable.Store }

func (g *guardStore) OpenShard(query string, shard int) (durable.ShardLog, error) {
	l, err := g.s.OpenShard(query, shard)
	if err != nil {
		return nil, err
	}
	return &guardLog{l: l}, nil
}

func (g *guardStore) Close() error { return g.s.Close() }

type guardLog struct{ l durable.ShardLog }

func (g *guardLog) Load(reg *event.Registry) (*durable.ShardState, error) {
	return g.l.Load(reg)
}

func (g *guardLog) Append(rec *durable.Record) error {
	if killed.Load() {
		return ErrKilled
	}
	return g.l.Append(rec)
}

func (g *guardLog) Sync() error {
	if killed.Load() {
		return ErrKilled
	}
	return g.l.Sync()
}

func (g *guardLog) Close() error { return g.l.Close() }

// Flaky wraps a durable store with deterministic error and latency
// injection, for degraded-mode tests: every FailEvery-th Append fails,
// and every Sync stalls for Latency.
func Flaky(s durable.Store, failEvery int, latency time.Duration) durable.Store {
	return &flakyStore{s: s, failEvery: int64(failEvery), latency: latency}
}

// ErrInjected is the failure Flaky injects.
var ErrInjected = errors.New("faultinject: injected write error")

type flakyStore struct {
	s         durable.Store
	failEvery int64
	latency   time.Duration
	n         atomic.Int64
}

func (f *flakyStore) OpenShard(query string, shard int) (durable.ShardLog, error) {
	l, err := f.s.OpenShard(query, shard)
	if err != nil {
		return nil, err
	}
	return &flakyLog{f: f, l: l}, nil
}

func (f *flakyStore) Close() error { return f.s.Close() }

type flakyLog struct {
	f *flakyStore
	l durable.ShardLog
}

func (g *flakyLog) Load(reg *event.Registry) (*durable.ShardState, error) {
	return g.l.Load(reg)
}

func (g *flakyLog) Append(rec *durable.Record) error {
	if fe := g.f.failEvery; fe > 0 && g.f.n.Add(1)%fe == 0 {
		return ErrInjected
	}
	return g.l.Append(rec)
}

func (g *flakyLog) Sync() error {
	if g.f.latency > 0 {
		time.Sleep(g.f.latency)
	}
	return g.l.Sync()
}

func (g *flakyLog) Close() error { return g.l.Close() }
