//go:build !faultinject

// Package faultinject is the crash-testing harness; without the
// `faultinject` build tag this no-op twin is compiled instead, so the
// engine's crash-point instrumentation folds into dead branches and
// production binaries carry no harness code.
package faultinject

// Enabled reports whether the harness is compiled in.
func Enabled() bool { return false }

// Hit is a no-op without the faultinject tag.
func Hit(string) {}

// Killed reports false without the faultinject tag.
func Killed() bool { return false }
