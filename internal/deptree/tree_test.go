package deptree

import (
	"math/rand"
	"testing"

	"github.com/spectrecep/spectre/internal/window"
)

// harness builds a tree with a deterministic version factory.
type harness struct {
	tree    *Tree
	nextVer uint64
	nextWin uint64
	nextCG  uint64
	dropped []*WindowVersion
}

func newHarness() *harness {
	h := &harness{}
	h.tree = NewTree(func(win *window.Window, suppressed []*CG) *WindowVersion {
		h.nextVer++
		wv := NewWindowVersion(h.nextVer, win, suppressed)
		wv.SetPos(win.StartSeq)
		return wv
	})
	h.tree.OnDrop = func(wv *WindowVersion) { h.dropped = append(h.dropped, wv) }
	return h
}

func (h *harness) window(start, end uint64) *window.Window {
	w := window.NewWindow(h.nextWin, start, 0)
	h.nextWin++
	w.SetEndSeq(end)
	return w
}

func (h *harness) cg(owner *WindowVersion) *CG {
	h.nextCG++
	cg := NewCG(h.nextCG, owner, 0, 3)
	return cg
}

func TestNewWindowChain(t *testing.T) {
	h := newHarness()
	w1 := h.tree.NewWindow(h.window(0, 100))
	if len(w1) != 1 || h.tree.Root() == nil || h.tree.Root().WV != w1[0] {
		t.Fatal("first window must become the root version")
	}
	w2 := h.tree.NewWindow(h.window(50, 150))
	if len(w2) != 1 {
		t.Fatalf("second window created %d versions, want 1", len(w2))
	}
	if h.tree.Root().Child() == nil || h.tree.Root().Child().WV != w2[0] {
		t.Fatal("second window must chain below the root")
	}
	if err := h.tree.Check(); err != nil {
		t.Fatal(err)
	}
	if h.tree.Size() != 2 {
		t.Fatalf("size = %d, want 2", h.tree.Size())
	}
}

func TestCGCreatedBranchesDependents(t *testing.T) {
	h := newHarness()
	root := h.tree.NewWindow(h.window(0, 100))[0]
	dep := h.tree.NewWindow(h.window(50, 150))[0]

	cg := h.cg(root)
	created := h.tree.CGCreated(cg)
	if len(created) != 1 {
		t.Fatalf("completion-edge copies = %d, want 1", len(created))
	}
	copyWV := created[0]
	if copyWV.Win != dep.Win {
		t.Fatal("the copy must be a version of the dependent window")
	}
	if len(copyWV.Suppressed) != 1 || copyWV.Suppressed[0] != cg {
		t.Fatal("the copy must suppress the new group")
	}
	if len(dep.Suppressed) != 0 {
		t.Fatal("the original version must stay unsuppressed (abandon edge)")
	}
	if err := h.tree.Check(); err != nil {
		t.Fatal(err)
	}
	// Root's child must now be the CG vertex with both edges populated.
	cgNode := h.tree.Root().Child()
	if cgNode.IsWV() {
		t.Fatal("root's child must be the CG vertex")
	}
	if cgNode.Edge(AbandonEdge) == nil || cgNode.Edge(CompletionEdge) == nil {
		t.Fatal("both edges must be populated")
	}

	// New windows attach under both edges.
	created2 := h.tree.NewWindow(h.window(120, 220))
	if len(created2) != 2 {
		t.Fatalf("new window created %d versions, want 2 (one per leaf path)", len(created2))
	}
	if err := h.tree.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestCGResolvedCompletedDropsAbandonSide(t *testing.T) {
	h := newHarness()
	root := h.tree.NewWindow(h.window(0, 100))[0]
	dep := h.tree.NewWindow(h.window(50, 150))[0]
	cg := h.cg(root)
	copies := h.tree.CGCreated(cg)

	cg.Resolve(CGCompleted)
	h.tree.CGResolved(cg)
	if !dep.Dropped() {
		t.Fatal("abandon-side version must be dropped on completion")
	}
	if copies[0].Dropped() {
		t.Fatal("completion-side version must survive")
	}
	if got := h.tree.Root().Child(); got == nil || got.WV != copies[0] {
		t.Fatal("surviving version must splice to the root")
	}
	if err := h.tree.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestCGResolvedAbandonedDropsCompletionSide(t *testing.T) {
	h := newHarness()
	root := h.tree.NewWindow(h.window(0, 100))[0]
	dep := h.tree.NewWindow(h.window(50, 150))[0]
	cg := h.cg(root)
	copies := h.tree.CGCreated(cg)

	cg.Resolve(CGAbandoned)
	h.tree.CGResolved(cg)
	if dep.Dropped() {
		t.Fatal("abandon-side version must survive on abandonment")
	}
	if !copies[0].Dropped() {
		t.Fatal("completion-side version must be dropped")
	}
	if err := h.tree.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestPopRootAdvances(t *testing.T) {
	h := newHarness()
	h.tree.NewWindow(h.window(0, 100))
	dep := h.tree.NewWindow(h.window(50, 150))[0]
	next := h.tree.PopRoot()
	if next != dep {
		t.Fatal("PopRoot must promote the dependent window's version")
	}
	if h.tree.Root().WV != dep || h.tree.Root().Parent() != nil {
		t.Fatal("new root must be detached from its old parent")
	}
	if h.tree.PopRoot() != nil || !h.tree.Empty() {
		t.Fatal("tree must drain")
	}
}

func TestRebuildBelow(t *testing.T) {
	h := newHarness()
	root := h.tree.NewWindow(h.window(0, 100))[0]
	dep := h.tree.NewWindow(h.window(50, 150))[0]
	dep2 := h.tree.NewWindow(h.window(90, 190))[0]
	cg := h.cg(root)
	h.tree.CGCreated(cg)

	fresh := h.tree.RebuildBelow(root)
	if len(fresh) != 2 {
		t.Fatalf("rebuild created %d fresh versions, want 2", len(fresh))
	}
	if !dep.Dropped() || !dep2.Dropped() {
		t.Fatal("old dependents must be dropped")
	}
	if fresh[0].Win.ID > fresh[1].Win.ID {
		t.Fatal("fresh chain must be in window order")
	}
	for _, wv := range fresh {
		if len(wv.Suppressed) != 0 {
			t.Fatal("fresh chain inherits only the rebuilt version's suppression (none here)")
		}
	}
	if err := h.tree.Check(); err != nil {
		t.Fatal(err)
	}
}

// TestTopKOrdering verifies the max-heap walk of Fig. 6: higher survival
// probability first, abandon vs completion weighting from the predictor.
func TestTopKOrdering(t *testing.T) {
	h := newHarness()
	root := h.tree.NewWindow(h.window(0, 100))[0]
	dep := h.tree.NewWindow(h.window(50, 150))[0]
	cg := h.cg(root)
	copies := h.tree.CGCreated(cg)
	copyWV := copies[0]

	probHigh := func(*CG) float64 { return 0.9 }
	all := func(*WindowVersion) bool { return true }

	got := h.tree.TopK(3, probHigh, all, nil)
	if len(got) != 3 {
		t.Fatalf("topk returned %d, want 3", len(got))
	}
	if got[0] != root {
		t.Fatal("root (SP=1) must rank first")
	}
	if got[1] != copyWV {
		t.Fatalf("completion-edge version (SP=0.9) must rank second, got WV%d", got[1].ID)
	}
	if got[2] != dep {
		t.Fatal("abandon-edge version (SP=0.1) must rank third")
	}

	probLow := func(*CG) float64 { return 0.2 }
	got = h.tree.TopK(3, probLow, all, nil)
	if got[1] != dep || got[2] != copyWV {
		t.Fatal("with P=0.2 the abandon edge must rank before the completion edge")
	}

	// SP values must match SurvivalProbability.
	if sp := h.tree.SurvivalProbability(copyWV, probLow); sp != 0.2 {
		t.Fatalf("SP(copy) = %g, want 0.2", sp)
	}
	if sp := h.tree.SurvivalProbability(dep, probLow); sp != 0.8 {
		t.Fatalf("SP(dep) = %g, want 0.8", sp)
	}
}

// TestTopKEligibleFilter checks that ineligible versions are skipped but
// their subtrees still explored.
func TestTopKEligibleFilter(t *testing.T) {
	h := newHarness()
	root := h.tree.NewWindow(h.window(0, 100))[0]
	dep := h.tree.NewWindow(h.window(50, 150))[0]
	root.MarkFinished()
	got := h.tree.TopK(2, func(*CG) float64 { return 0.5 },
		func(wv *WindowVersion) bool { return !wv.Finished() }, nil)
	if len(got) != 1 || got[0] != dep {
		t.Fatalf("topk = %v, want only the dependent version", got)
	}
}

// TestMultipleCGsSharedReference exercises the structure-copy path: a
// second group of the same owner replicates the first group's vertex with
// a shared reference, and resolving the first group splices both copies.
func TestMultipleCGsSharedReference(t *testing.T) {
	h := newHarness()
	root := h.tree.NewWindow(h.window(0, 100))[0]
	h.tree.NewWindow(h.window(50, 150))
	cg1 := h.cg(root)
	h.tree.CGCreated(cg1)
	cg2 := h.cg(root)
	created := h.tree.CGCreated(cg2)
	// cg2's completion edge must contain a copy of cg1's vertex, so the
	// dependent window has 4 versions total (2×2 outcomes).
	if h.tree.Size() != 1+4 {
		t.Fatalf("tree size = %d, want 5 (root + 4 dependent versions)", h.tree.Size())
	}
	if len(created) != 2 {
		t.Fatalf("cg2 copies = %d, want 2 (cg1-abandon and cg1-complete sides)", len(created))
	}
	if err := h.tree.Check(); err != nil {
		t.Fatal(err)
	}

	cg1.Resolve(CGCompleted)
	h.tree.CGResolved(cg1)
	if err := h.tree.Check(); err != nil {
		t.Fatal(err)
	}
	// Only versions assuming cg1-completion survive: one per cg2 outcome.
	if h.tree.Size() != 1+2 {
		t.Fatalf("tree size after cg1 completion = %d, want 3", h.tree.Size())
	}
	cg2.Resolve(CGAbandoned)
	h.tree.CGResolved(cg2)
	if h.tree.Size() != 1+1 {
		t.Fatalf("tree size after cg2 abandonment = %d, want 2", h.tree.Size())
	}
	surv := h.tree.Root().Child().WV
	if len(surv.Suppressed) != 1 || surv.Suppressed[0] != cg1 {
		t.Fatal("survivor must suppress exactly the completed cg1")
	}
}

// TestRandomizedTreeInvariants drives the tree through random operation
// sequences and validates the structural invariants after every step.
func TestRandomizedTreeInvariants(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		h := newHarness()
		var openCGs []*CG
		var live []*WindowVersion
		start := uint64(0)

		for step := 0; step < 200; step++ {
			switch rng.Intn(10) {
			case 0, 1, 2: // new window
				created := h.tree.NewWindow(h.window(start, start+100))
				start += uint64(rng.Intn(50) + 1)
				live = append(live, created...)
			case 3, 4: // create a CG on a random live version
				if len(live) == 0 {
					continue
				}
				wv := live[rng.Intn(len(live))]
				if wv.Dropped() {
					continue
				}
				cg := h.cg(wv)
				created := h.tree.CGCreated(cg)
				live = append(live, created...)
				openCGs = append(openCGs, cg)
			case 5, 6: // resolve a random open CG
				if len(openCGs) == 0 {
					continue
				}
				i := rng.Intn(len(openCGs))
				cg := openCGs[i]
				openCGs = append(openCGs[:i], openCGs[i+1:]...)
				if rng.Intn(2) == 0 {
					cg.Resolve(CGCompleted)
				} else {
					cg.Resolve(CGAbandoned)
				}
				h.tree.CGResolved(cg)
			case 7: // rebuild below a live version
				if len(live) == 0 {
					continue
				}
				wv := live[rng.Intn(len(live))]
				if wv.Dropped() {
					continue
				}
				created := h.tree.RebuildBelow(wv)
				live = append(live, created...)
			case 8: // pop the root if it has no pending CG vertex below
				root := h.tree.Root()
				if root == nil {
					continue
				}
				if c := root.Child(); c == nil || c.IsWV() {
					h.tree.PopRoot()
				}
			case 9: // top-k never panics and returns live versions
				got := h.tree.TopK(4, func(cg *CG) float64 {
					switch cg.Outcome() {
					case CGCompleted:
						return 1
					case CGAbandoned:
						return 0
					}
					return rng.Float64()
				}, nil, nil)
				for _, wv := range got {
					if wv.Dropped() {
						t.Fatalf("seed %d step %d: top-k returned dropped version", seed, step)
					}
				}
			}
			if err := h.tree.Check(); err != nil {
				t.Fatalf("seed %d step %d: %v", seed, step, err)
			}
			if h.tree.MaxSize() < h.tree.Size() {
				t.Fatalf("seed %d: max size below current size", seed)
			}
		}
	}
}

func TestCGSnapshots(t *testing.T) {
	cg := NewCG(1, nil, 0, 5)
	if cg.Contains(10) {
		t.Fatal("empty group must contain nothing")
	}
	cg.Add(10)
	cg.Add(20)
	cg.Add(15) // out-of-order insert
	cg.Add(20) // duplicate
	snap := cg.Snapshot()
	if len(snap.Seqs) != 3 || snap.Seqs[0] != 10 || snap.Seqs[1] != 15 || snap.Seqs[2] != 20 {
		t.Fatalf("snapshot = %v, want [10 15 20]", snap.Seqs)
	}
	if snap.Version != 3 {
		t.Fatalf("version = %d, want 3 (duplicate must not bump)", snap.Version)
	}
	if !cg.Contains(15) || cg.Contains(16) {
		t.Fatal("Contains must use binary search on the snapshot")
	}
	if !cg.Resolve(CGCompleted) {
		t.Fatal("first resolve must succeed")
	}
	if cg.Resolve(CGAbandoned) {
		t.Fatal("second resolve must be a no-op")
	}
	if cg.Outcome() != CGCompleted {
		t.Fatal("outcome must stay completed")
	}
}
