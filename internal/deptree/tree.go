package deptree

import (
	"container/heap"
	"fmt"
	"sort"
	"strings"

	"github.com/spectrecep/spectre/internal/window"
)

// Node is a dependency-tree vertex: either a window version or a
// consumption group (paper §3.1). A WV node has at most one child
// (children[0]); a CG node has an abandon edge (children[0]) and a
// completion edge (children[1]).
type Node struct {
	WV *WindowVersion
	CG *CG

	children [2]*Node
	parent   *Node
	slot     int
	detached bool
	stamp    uint64 // creation order, used as a deterministic tie-break
}

// Slots of CG nodes.
const (
	// AbandonEdge links versions that assume the group is abandoned.
	AbandonEdge = 0
	// CompletionEdge links versions that assume the group completes (its
	// events suppressed).
	CompletionEdge = 1
)

// IsWV reports whether the node is a window-version vertex.
func (n *Node) IsWV() bool { return n.WV != nil }

// Child returns the WV node's only child.
func (n *Node) Child() *Node { return n.children[0] }

// Edge returns the CG node's edge (AbandonEdge or CompletionEdge).
func (n *Node) Edge(slot int) *Node { return n.children[slot] }

// Parent returns the parent vertex (nil at the root).
func (n *Node) Parent() *Node { return n.parent }

// Tree is the dependency tree. It is owned by the splitter goroutine and
// is not safe for concurrent use.
type Tree struct {
	// NewVersion creates a fresh window version (the runtime supplies
	// version ids and processing state initialization).
	NewVersion func(win *window.Window, suppressed []*CG) *WindowVersion
	// OnDrop is invoked for every window version removed from the tree
	// (wrong speculation path); may be nil.
	OnDrop func(wv *WindowVersion)
	// CapSize bounds speculative growth: once the tree holds CapSize
	// window versions in total, CGCreated stops inserting
	// consumption-group vertices (the group is treated as abandoned by
	// the tree). Adverse outcomes are caught by the runtime's final
	// validation gate, which reprocesses deterministically, so the cap
	// trades throughput for a bounded tree without affecting the
	// delivered output. The bound is absolute — a stream keeping more
	// than CapSize windows in flight runs unspeculated until the backlog
	// drains. 0 = unlimited.
	CapSize int

	root    *Node
	stamp   uint64
	size    int // current number of WV vertices
	maxSize int // high-water mark (paper Fig. 10(f))
}

// NewTree returns an empty tree using the given version factory.
func NewTree(newVersion func(win *window.Window, suppressed []*CG) *WindowVersion) *Tree {
	return &Tree{NewVersion: newVersion}
}

// Root returns the root vertex (nil when the tree is empty). The root is
// always a window-version vertex: the single version of the oldest
// unresolved window.
func (t *Tree) Root() *Node { return t.root }

// Empty reports whether the tree has no vertices.
func (t *Tree) Empty() bool { return t.root == nil }

// Size returns the current number of window-version vertices.
func (t *Tree) Size() int { return t.size }

// MaxSize returns the high-water mark of window-version vertices (the
// metric of paper Fig. 10(f)).
func (t *Tree) MaxSize() int { return t.maxSize }

func (t *Tree) nextStamp() uint64 {
	t.stamp++
	return t.stamp
}

func (t *Tree) newWVNode(win *window.Window, suppressed []*CG) *Node {
	wv := t.NewVersion(win, suppressed)
	n := &Node{WV: wv, stamp: t.nextStamp()}
	wv.node = n
	t.size++
	if t.size > t.maxSize {
		t.maxSize = t.size
	}
	return n
}

func link(parent *Node, slot int, child *Node) {
	parent.children[slot] = child
	if child != nil {
		child.parent = parent
		child.slot = slot
	}
}

// NewWindow attaches versions of win to the tree: one at every WV leaf,
// two at every CG leaf (one per outcome edge), as in the paper's
// newWindow algorithm (Fig. 4, lines 1-10). When the tree is empty the
// window becomes the root (the only version of an independent window).
// It returns the versions created.
func (t *Tree) NewWindow(win *window.Window) []*WindowVersion {
	if t.root == nil {
		t.root = t.newWVNode(win, nil)
		return []*WindowVersion{t.root.WV}
	}
	var created []*WindowVersion
	t.attachAtLeaves(t.root, nil, win, &created)
	return created
}

// attachAtLeaves walks to the leaves, tracking the suppression set implied
// by the completion edges on the path.
func (t *Tree) attachAtLeaves(n *Node, suppressed []*CG, win *window.Window, created *[]*WindowVersion) {
	if n.IsWV() {
		if n.children[0] == nil {
			child := t.newWVNode(win, suppressed)
			link(n, 0, child)
			*created = append(*created, child.WV)
			return
		}
		t.attachAtLeaves(n.children[0], suppressed, win, created)
		return
	}
	// CG vertex: recurse into both edges; completion adds the group to
	// the suppression set.
	if n.children[AbandonEdge] == nil {
		child := t.newWVNode(win, suppressed)
		link(n, AbandonEdge, child)
		*created = append(*created, child.WV)
	} else {
		t.attachAtLeaves(n.children[AbandonEdge], suppressed, win, created)
	}
	withCG := appendCG(suppressed, n.CG)
	if n.children[CompletionEdge] == nil {
		child := t.newWVNode(win, withCG)
		link(n, CompletionEdge, child)
		*created = append(*created, child.WV)
	} else {
		t.attachAtLeaves(n.children[CompletionEdge], withCG, win, created)
	}
}

func appendCG(sup []*CG, cg *CG) []*CG {
	out := make([]*CG, 0, len(sup)+1)
	out = append(out, sup...)
	out = append(out, cg)
	return out
}

// CGCreated inserts a vertex for cg below its owning window version
// (paper Fig. 4, lines 12-16): the owner's old subtree moves to the
// abandon edge; the completion edge receives versions of the same
// dependent windows that additionally suppress cg. It returns the window
// versions created for the completion edge.
func (t *Tree) CGCreated(cg *CG) []*WindowVersion {
	owner := cg.Owner
	if owner == nil || owner.Dropped() || owner.node == nil || owner.node.detached {
		return nil
	}
	if t.CapSize > 0 && t.size >= t.CapSize {
		// Speculation budget exhausted: the structure copy below would grow
		// the tree combinatorially (and on adversarial streams, livelock
		// the splitter in copy/drop churn). Dependent versions simply do
		// not suppress this group; if it completes after all, the final
		// validation gate reprocesses the affected roots deterministically.
		return nil
	}
	n := owner.node
	old := n.children[0]
	cgNode := &Node{CG: cg, stamp: t.nextStamp()}
	cg.nodes = append(cg.nodes, cgNode)
	link(n, 0, cgNode)
	link(cgNode, AbandonEdge, old)
	var created []*WindowVersion
	copyRoot := t.copyStructure(old, owner, appendCG(owner.Suppressed, cg), &created)
	link(cgNode, CompletionEdge, copyRoot)
	return created
}

// copyStructure builds the "modified copy" of the paper: consumption-group
// vertices owned by the same window version are replicated with shared
// group references (their outcomes branch the copy exactly like the
// original), while dependent windows' versions are created fresh — a
// different suppression set changes their detection, so their partial
// matches (and any groups those created) cannot be reused.
func (t *Tree) copyStructure(n *Node, owner *WindowVersion, suppressed []*CG, created *[]*WindowVersion) *Node {
	if n == nil {
		return nil
	}
	if !n.IsWV() && n.CG.Owner == owner {
		cn := &Node{CG: n.CG, stamp: t.nextStamp()}
		n.CG.nodes = append(n.CG.nodes, cn)
		link(cn, AbandonEdge, t.copyStructure(n.children[AbandonEdge], owner, suppressed, created))
		link(cn, CompletionEdge, t.copyStructure(n.children[CompletionEdge], owner, appendCG(suppressed, n.CG), created))
		return cn
	}
	// Window-version boundary: everything below collapses into a fresh
	// linear chain of the windows present in the subtree.
	wins := windowsInSubtree(n)
	return t.freshChain(wins, suppressed, created)
}

// freshChain builds a linear chain of fresh versions for wins (ascending
// window id) under the given suppression set.
func (t *Tree) freshChain(wins []*window.Window, suppressed []*CG, created *[]*WindowVersion) *Node {
	var head, tail *Node
	for _, w := range wins {
		nd := t.newWVNode(w, suppressed)
		*created = append(*created, nd.WV)
		if head == nil {
			head = nd
		} else {
			link(tail, 0, nd)
		}
		tail = nd
	}
	return head
}

// windowsInSubtree collects the distinct windows of all WV vertices below
// (and including) n, ascending by window id.
func windowsInSubtree(n *Node) []*window.Window {
	seen := make(map[uint64]*window.Window)
	var walk func(*Node)
	walk = func(nd *Node) {
		if nd == nil {
			return
		}
		if nd.IsWV() {
			seen[nd.WV.Win.ID] = nd.WV.Win
		}
		walk(nd.children[0])
		walk(nd.children[1])
	}
	walk(n)
	wins := make([]*window.Window, 0, len(seen))
	for _, w := range seen {
		wins = append(wins, w)
	}
	sort.Slice(wins, func(i, j int) bool { return wins[i].ID < wins[j].ID })
	return wins
}

// CGResolved applies a consumption-group outcome (paper Fig. 4, lines
// 18-26): at every vertex referencing cg, the losing edge's subtree is
// dropped and the winning subtree is spliced to the parent. The group must
// already be resolved (cg.Resolve called).
func (t *Tree) CGResolved(cg *CG) {
	outcome := cg.Outcome()
	if outcome == CGOpen {
		return
	}
	winnerSlot := AbandonEdge
	if outcome == CGCompleted {
		winnerSlot = CompletionEdge
	}
	nodes := cg.nodes
	cg.nodes = nil
	for _, n := range nodes {
		if n.detached {
			continue
		}
		winner := n.children[winnerSlot]
		loser := n.children[1-winnerSlot]
		t.dropSubtree(loser)
		n.detached = true
		parent := n.parent
		if parent == nil {
			// A CG vertex is never the tree root (the root is the single
			// version of the oldest window), but handle it defensively.
			t.root = winner
			if winner != nil {
				winner.parent = nil
			}
			continue
		}
		link(parent, n.slot, winner)
		if winner == nil {
			parent.children[n.slot] = nil
		}
	}
}

// dropSubtree removes a whole subtree: every window version in it is
// marked dropped (wrong speculation) and reported via OnDrop; vertex
// references of consumption groups inside are unregistered.
func (t *Tree) dropSubtree(n *Node) {
	if n == nil {
		return
	}
	n.detached = true
	if n.IsWV() {
		t.size--
		n.WV.MarkDropped()
		if t.OnDrop != nil {
			t.OnDrop(n.WV)
		}
	}
	t.dropSubtree(n.children[0])
	t.dropSubtree(n.children[1])
}

// RebuildBelow discards everything below wv and replaces it with a fresh
// linear chain of the same dependent windows under wv's own suppression
// set. Used after a rollback: the dependents were built on assumptions the
// rolled-back version is about to recompute. It returns the fresh
// versions.
func (t *Tree) RebuildBelow(wv *WindowVersion) []*WindowVersion {
	n := wv.node
	if n == nil || n.detached {
		return nil
	}
	old := n.children[0]
	if old == nil {
		return nil
	}
	wins := windowsInSubtree(old)
	t.dropSubtree(old)
	n.children[0] = nil
	var created []*WindowVersion
	chain := t.freshChain(wins, wv.Suppressed, &created)
	link(n, 0, chain)
	return created
}

// PopRoot removes the root vertex (its window is fully resolved and
// emitted) and promotes its child — which must be a WV vertex or nil — to
// root. It returns the new root's window version (nil when the tree
// drained).
func (t *Tree) PopRoot() *WindowVersion {
	old := t.root
	if old == nil {
		return nil
	}
	child := old.children[0]
	old.detached = true
	t.size--
	t.root = child
	if child == nil {
		return nil
	}
	child.parent = nil
	child.slot = 0
	return child.WV
}

// topItem is a priority-queue entry of the top-k walk.
type topItem struct {
	node *Node
	sp   float64
}

type topHeap []topItem

func (h topHeap) Len() int { return len(h) }
func (h topHeap) Less(i, j int) bool {
	if h[i].sp != h[j].sp {
		return h[i].sp > h[j].sp
	}
	return h[i].node.stamp < h[j].node.stamp
}
func (h topHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *topHeap) Push(x any)   { *h = append(*h, x.(topItem)) }
func (h *topHeap) Pop() any     { old := *h; n := len(old); it := old[n-1]; *h = old[:n-1]; return it }

// TopK selects the k schedulable window versions with the highest survival
// probability (paper §3.2.2, Fig. 6). prob returns the completion
// probability of an open consumption group; eligible filters versions that
// actually need processing (finished or empty versions are skipped but
// their subtrees are still explored). The result is appended to out.
//
// Survival probabilities are non-increasing from root to leaves, so the
// tree is a max-heap under SP and the walk visits the minimal number of
// vertices.
func (t *Tree) TopK(k int, prob func(cg *CG) float64, eligible func(wv *WindowVersion) bool, out []*WindowVersion) []*WindowVersion {
	if t.root == nil || k <= 0 {
		return out
	}
	h := make(topHeap, 0, 2*k+2)
	heap.Push(&h, topItem{node: t.root, sp: 1})
	for len(h) > 0 && len(out) < k {
		it := heap.Pop(&h).(topItem)
		n := it.node
		if n.IsWV() {
			if eligible == nil || eligible(n.WV) {
				out = append(out, n.WV)
			}
			if c := n.children[0]; c != nil {
				heap.Push(&h, topItem{node: c, sp: it.sp})
			}
			continue
		}
		p := prob(n.CG)
		if p < 0 {
			p = 0
		} else if p > 1 {
			p = 1
		}
		if c := n.children[AbandonEdge]; c != nil {
			heap.Push(&h, topItem{node: c, sp: it.sp * (1 - p)})
		}
		if c := n.children[CompletionEdge]; c != nil {
			heap.Push(&h, topItem{node: c, sp: it.sp * p})
		}
	}
	return out
}

// SurvivalProbability computes SP(wv) from the consumption groups on the
// version's root path (paper §3.2): the product of P(c) over completion
// edges and 1-P(c') over abandon edges.
func (t *Tree) SurvivalProbability(wv *WindowVersion, prob func(cg *CG) float64) float64 {
	n := wv.node
	if n == nil {
		return 0
	}
	sp := 1.0
	for n.parent != nil {
		p := n.parent
		if !p.IsWV() {
			pc := prob(p.CG)
			if n.slot == CompletionEdge {
				sp *= pc
			} else {
				sp *= 1 - pc
			}
		}
		n = p
	}
	return sp
}

// Check verifies structural invariants; it returns an error describing the
// first violation. Used by property-based tests.
func (t *Tree) Check() error {
	if t.root == nil {
		return nil
	}
	if !t.root.IsWV() {
		return fmt.Errorf("deptree: root is not a window-version vertex")
	}
	count := 0
	var walk func(n *Node, sup []*CG) error
	walk = func(n *Node, sup []*CG) error {
		if n.detached {
			return fmt.Errorf("deptree: reachable vertex %d is detached", n.stamp)
		}
		if n.IsWV() {
			count++
			if n.WV.Dropped() {
				return fmt.Errorf("deptree: reachable version %d is dropped", n.WV.ID)
			}
			// Every completion-edge group on the path must be suppressed
			// by the version. (The version may suppress additional
			// already-resolved groups whose vertices were spliced away —
			// their suppression outlives the vertex.)
			suppressed := make(map[*CG]bool, len(n.WV.Suppressed))
			for _, cg := range n.WV.Suppressed {
				suppressed[cg] = true
			}
			for _, cg := range sup {
				if !suppressed[cg] {
					return fmt.Errorf("deptree: version %d misses path-implied suppression of CG%d", n.WV.ID, cg.ID)
				}
			}
			// Conversely, every still-open suppressed group must lie on
			// the version's path.
			onPath := make(map[*CG]bool, len(sup))
			for _, cg := range sup {
				onPath[cg] = true
			}
			for _, cg := range n.WV.Suppressed {
				if cg.Outcome() == CGOpen && !onPath[cg] {
					return fmt.Errorf("deptree: version %d suppresses open CG%d that is not on its path", n.WV.ID, cg.ID)
				}
			}
			if n.children[1] != nil {
				return fmt.Errorf("deptree: WV vertex %d has a second child", n.WV.ID)
			}
		}
		for slot, c := range n.children {
			if c == nil {
				continue
			}
			if c.parent != n || c.slot != slot {
				return fmt.Errorf("deptree: broken parent link at stamp %d", c.stamp)
			}
			childSup := sup
			if !n.IsWV() && slot == CompletionEdge {
				childSup = appendCG(sup, n.CG)
			}
			if err := walk(c, childSup); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.root, nil); err != nil {
		return err
	}
	if count != t.size {
		return fmt.Errorf("deptree: size %d but %d reachable versions", t.size, count)
	}
	return nil
}

func sortedCGs(sup []*CG) []*CG {
	out := append([]*CG(nil), sup...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Dump renders the tree for debugging.
func (t *Tree) Dump() string {
	var b strings.Builder
	var walk func(n *Node, depth int, label string)
	walk = func(n *Node, depth int, label string) {
		if n == nil {
			return
		}
		b.WriteString(strings.Repeat("  ", depth))
		b.WriteString(label)
		if n.IsWV() {
			fmt.Fprintf(&b, "WV%d(win=%d sup=%d)\n", n.WV.ID, n.WV.Win.ID, len(n.WV.Suppressed))
			walk(n.children[0], depth+1, "")
			return
		}
		fmt.Fprintf(&b, "CG%d(owner=WV%d %s)\n", n.CG.ID, n.CG.Owner.ID, n.CG.Outcome())
		walk(n.children[AbandonEdge], depth+1, "a:")
		walk(n.children[CompletionEdge], depth+1, "c:")
	}
	walk(t.root, 0, "")
	return b.String()
}
