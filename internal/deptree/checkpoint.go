package deptree

import (
	"github.com/spectrecep/spectre/internal/event"
	"github.com/spectrecep/spectre/internal/matcher"
	"github.com/spectrecep/spectre/internal/window"
)

// Checkpoint is an immutable snapshot of a window version's processing
// prefix: the matcher state plus the consumption bookkeeping accumulated
// up to (but excluding) position Pos. The SPECTRE runtime records one
// every CheckpointEvery events and uses them to implement the paper's
// "modified copy" (Fig. 4) cheaply — a new speculative version of the
// same window is seeded from the latest checkpoint at or before its
// divergence point and replays only the suffix, instead of reprocessing
// the whole window. Rollbacks reuse the same snapshots to restart from
// the latest still-consistent prefix.
//
// A checkpoint is valid as a seed for a version v when
//
//   - Sup ⊆ v.Suppressed (the prefix suppressed no group v does not), and
//   - every group in v.Suppressed \ Sup currently holds no event before
//     Pos (the prefix could not have speculatively skipped it), and
//   - Used intersects no suppressed group's current membership and no
//     finally consumed event (the prefix is consistent as of now).
//
// Later membership changes are caught by the periodic consistency checks
// exactly as for an unseeded version — the seed inherits the prefix's
// Used set — and the final validation gate stays unconditional, so
// seeding never affects delivered output.
//
// All fields are immutable after capture; Restore deep-copies them.
type Checkpoint struct {
	// Pos is the next raw-stream position the prefix would process.
	Pos uint64
	// Win is the underlying window.
	Win *window.Window
	// State is a deep clone of the matcher state at Pos. It is never
	// mutated; Restore clones it again.
	State *matcher.State
	// Used, Skipped, LocalConsumed and Buffered are copies of the
	// version's bookkeeping at Pos (see WindowVersion).
	Used, Skipped, LocalConsumed []uint64
	Buffered                     []event.Complex
	// Sup is the suppression set the prefix was processed under (the
	// recording version's, sorted by CG ID; aliased, not copied — a
	// version's suppression set is immutable).
	Sup []*CG
}

// Capture snapshots the version's current processing prefix. The caller
// must hold wv.Mu and wv.State must be non-nil.
func (wv *WindowVersion) Capture() *Checkpoint {
	return &Checkpoint{
		Pos:           wv.Pos(),
		Win:           wv.Win,
		State:         wv.State.Clone(),
		Used:          append([]uint64(nil), wv.Used...),
		Skipped:       append([]uint64(nil), wv.Skipped...),
		LocalConsumed: append([]uint64(nil), wv.LocalConsumed...),
		Buffered:      append([]event.Complex(nil), wv.Buffered...),
		Sup:           wv.Suppressed,
	}
}

// Restore resets the version's processing state to the checkpointed
// prefix. The caller must own the version (hold Mu, or have exclusive
// access to a freshly created version). Open matcher runs inherited from
// the prefix are resumed without consumption-group tracking (RunCGs is
// cleared): the tree does not speculate on them, and if such a run
// completes after all, the final validation gate repairs dependents —
// the same fallback the speculation budget uses. LastChecked is zeroed;
// the caller that verified the checkpoint against current group
// snapshots should overwrite it with the verified snapshot versions.
func (wv *WindowVersion) Restore(ck *Checkpoint) {
	wv.State = ck.State.Clone()
	wv.SetPos(ck.Pos)
	wv.Used = append(wv.Used[:0], ck.Used...)
	wv.Skipped = append(wv.Skipped[:0], ck.Skipped...)
	wv.LocalConsumed = append(wv.LocalConsumed[:0], ck.LocalConsumed...)
	wv.Buffered = append(wv.Buffered[:0], ck.Buffered...)
	clear(wv.RunCGs)
	for i := range wv.LastChecked {
		wv.LastChecked[i] = 0
	}
	wv.LastCkpt = ck.Pos
	wv.ClearFinished()
}

// ResetToStart resets the version's processing state to the window
// start with the given fresh matcher state — the full-reprocessing
// fallback shared by rollbacks without a usable checkpoint and the
// final validation gate. The caller must own the version.
func (wv *WindowVersion) ResetToStart(state *matcher.State) {
	wv.State = state
	wv.SetPos(wv.Win.StartSeq)
	wv.LastCkpt = wv.Win.StartSeq
	wv.Used = wv.Used[:0]
	wv.Skipped = wv.Skipped[:0]
	wv.LocalConsumed = wv.LocalConsumed[:0]
	wv.Buffered = wv.Buffered[:0]
	clear(wv.RunCGs)
	for i := range wv.LastChecked {
		wv.LastChecked[i] = 0
	}
	wv.ClearFinished()
}
