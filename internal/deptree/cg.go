// Package deptree implements SPECTRE's dependency tree (paper §3.1,
// Figures 3 and 4): the structure that captures how speculative window
// versions depend on the outcomes of consumption groups, plus survival
// probabilities and top-k selection (§3.2, Figure 6).
//
// The tree is owned exclusively by the splitter goroutine. The CG and
// WindowVersion types carry the small amount of state that operator
// instances share with the splitter; those fields are explicitly
// synchronized (atomics or copy-on-write snapshots) and documented below.
package deptree

import (
	"sort"
	"sync"
	"sync/atomic"

	"github.com/spectrecep/spectre/internal/event"
	"github.com/spectrecep/spectre/internal/matcher"
	"github.com/spectrecep/spectre/internal/window"
)

// CGOutcome is the resolution state of a consumption group.
type CGOutcome int32

const (
	// CGOpen means the underlying partial match is still undecided.
	CGOpen CGOutcome = iota
	// CGCompleted means the pattern instance completed; the group's events
	// are consumed.
	CGCompleted
	// CGAbandoned means the pattern instance can no longer complete; no
	// event is consumed.
	CGAbandoned
)

// String implements fmt.Stringer.
func (o CGOutcome) String() string {
	switch o {
	case CGOpen:
		return "open"
	case CGCompleted:
		return "completed"
	case CGAbandoned:
		return "abandoned"
	default:
		return "invalid"
	}
}

// CGSnapshot is an immutable view of a consumption group's event set.
type CGSnapshot struct {
	// Version increases with every event added; dependent window versions
	// use it to detect membership changes between consistency checks
	// (paper Fig. 8, lines 31-45).
	Version uint64
	// Seqs are the would-be-consumed event sequence numbers, ascending.
	Seqs []uint64
}

// Contains reports whether seq is in the snapshot.
func (s *CGSnapshot) Contains(seq uint64) bool {
	i := sort.Search(len(s.Seqs), func(i int) bool { return s.Seqs[i] >= seq })
	return i < len(s.Seqs) && s.Seqs[i] == seq
}

var emptySnapshot = &CGSnapshot{}

// CG is a consumption group: the events of one partial match that will be
// consumed together if the match completes (paper §3.1). A CG is owned by
// exactly one window version (whose matcher run it mirrors); its event set
// is written only by the instance processing that version and read by the
// splitter and by dependent versions' consistency checks.
type CG struct {
	// ID is unique per engine run.
	ID uint64
	// Owner is the window version whose partial match this group tracks.
	Owner *WindowVersion
	// RunID is the owner-matcher run this group mirrors.
	RunID int

	snap    atomic.Pointer[CGSnapshot]
	delta   atomic.Int64 // current completion state δ of the partial match
	outcome atomic.Int32 // CGOutcome

	// buf is the writer-owned backing of the event set. Published
	// snapshots alias immutable prefixes of it: the single writer only
	// ever appends past every published length (or swaps in a fresh
	// backing on the rare out-of-order insert), so readers of an old
	// snapshot never observe a mutated element.
	buf   []uint64
	dirty bool // appended but not yet published

	// nodes are the tree vertices referencing this group (more than one
	// when a sibling group's creation copied the structure). Owned by the
	// splitter.
	nodes []*Node
}

// NewCG creates an open consumption group.
func NewCG(id uint64, owner *WindowVersion, runID int, delta int) *CG {
	cg := &CG{ID: id, Owner: owner, RunID: runID}
	cg.snap.Store(emptySnapshot)
	cg.delta.Store(int64(delta))
	return cg
}

// Snapshot returns the current immutable event set.
func (cg *CG) Snapshot() *CGSnapshot { return cg.snap.Load() }

// Contains reports whether seq is currently in the group.
func (cg *CG) Contains(seq uint64) bool { return cg.snap.Load().Contains(seq) }

// Append records seq in the group without publishing a new snapshot.
// Single writer: the instance processing the owning window version.
// Events are bound in stream order, so the common case is an O(1)
// append at the tail; out-of-order seqs swap in a fresh backing so
// published snapshots stay intact.
func (cg *CG) Append(seq uint64) {
	if n := len(cg.buf); n == 0 || cg.buf[n-1] < seq {
		cg.buf = append(cg.buf, seq)
		cg.dirty = true
		return
	}
	i := sort.Search(len(cg.buf), func(i int) bool { return cg.buf[i] >= seq })
	if i < len(cg.buf) && cg.buf[i] == seq {
		return // already present
	}
	grown := make([]uint64, 0, len(cg.buf)+1)
	grown = append(grown, cg.buf[:i]...)
	grown = append(grown, seq)
	grown = append(grown, cg.buf[i:]...)
	cg.buf = grown
	cg.dirty = true
}

// Publish makes all appended events visible in a new snapshot. Called
// once per feedback application rather than per event, so a batch of
// appends costs one snapshot allocation.
func (cg *CG) Publish() {
	if !cg.dirty {
		return
	}
	cg.dirty = false
	old := cg.snap.Load()
	cg.snap.Store(&CGSnapshot{
		Version: old.Version + 1,
		Seqs:    cg.buf[:len(cg.buf):len(cg.buf)],
	})
}

// Add appends seq and publishes immediately (Append + Publish).
func (cg *CG) Add(seq uint64) {
	cg.Append(seq)
	cg.Publish()
}

// SetDelta publishes the partial match's current completion state δ.
func (cg *CG) SetDelta(d int) { cg.delta.Store(int64(d)) }

// Delta returns the published completion state δ.
func (cg *CG) Delta() int { return int(cg.delta.Load()) }

// Outcome returns the group's resolution state.
func (cg *CG) Outcome() CGOutcome { return CGOutcome(cg.outcome.Load()) }

// Resolve publishes the group's outcome. Idempotent; only the first call
// takes effect.
func (cg *CG) Resolve(o CGOutcome) bool {
	return cg.outcome.CompareAndSwap(int32(CGOpen), int32(o))
}

// WindowVersion is one speculative version of a window (paper §3.1): the
// window's events processed under a specific assumption set — the
// suppressed consumption groups on its root path's completion edges.
//
// Locking: Mu guards the processing state (State, Pos, Used, Skipped,
// Buffered, run bookkeeping). The instance currently processing the
// version holds Mu for the duration of a batch; the splitter takes Mu only
// for rollbacks/validation of unscheduled versions. The flags (dropped,
// validated, scheduled) are atomics so both sides can consult them without
// the lock.
type WindowVersion struct {
	// ID is unique per engine run (version id, not window id).
	ID uint64
	// Win is the underlying window; boundaries are fixed by the splitter.
	Win *window.Window
	// Suppressed are the consumption groups whose completion edge lies on
	// this version's root path; their events must not be processed.
	// Immutable after creation.
	Suppressed []*CG

	// node is the tree vertex of this version. Owned by the splitter.
	node *Node

	// SchedMark is the splitter's per-cycle scheduling token (splitter
	// use only, unsynchronized).
	SchedMark uint64

	dropped   atomic.Bool
	validated atomic.Bool
	finished  atomic.Bool
	scheduled atomic.Int32 // operator-instance index + 1; 0 = unscheduled
	pos       atomic.Uint64

	// Mu guards everything below.
	Mu sync.Mutex
	// State is the matcher state; nil until first scheduled (lazily
	// created by the runtime).
	State *matcher.State
	// Used are the influencing processed events (ascending): events bound
	// to a run or triggering a negation. Only these matter for
	// consumption consistency (skip-till-next-match ignores the rest).
	Used []uint64
	// Skipped are events suppressed speculatively because a suppressed
	// group contained them (ascending). Own-match consumption is tracked
	// in LocalConsumed instead.
	Skipped []uint64
	// LocalConsumed are events consumed by this version's own matches
	// (ascending); they must be skipped by later detection in the same
	// window but are final only once the version validates.
	LocalConsumed []uint64
	// Buffered are complex events produced speculatively, awaiting
	// validation (paper §3.3: "kept buffered until the window version
	// either becomes valid ... or is dropped").
	Buffered []event.Complex
	// RunCGs maps open matcher run ids to their consumption groups.
	RunCGs map[int]*CG
	// LastChecked maps suppressed groups to the snapshot version seen by
	// the last consistency check (parallel to Suppressed).
	LastChecked []uint64
	// LastCkpt is the position of the last recorded checkpoint (the
	// window start when none has been taken).
	LastCkpt uint64
	// Rollbacks counts how many times this version was rolled back.
	Rollbacks int
	// StatsEligible marks versions whose transitions feed the Markov
	// model (validated/independent versions only).
	StatsEligible bool
}

// NewWindowVersion creates an unscheduled version of win with the given
// suppression set (sorted by CG ID for deterministic checks).
func NewWindowVersion(id uint64, win *window.Window, suppressed []*CG) *WindowVersion {
	sup := append([]*CG(nil), suppressed...)
	sort.Slice(sup, func(i, j int) bool { return sup[i].ID < sup[j].ID })
	return &WindowVersion{
		ID:          id,
		Win:         win,
		Suppressed:  sup,
		RunCGs:      make(map[int]*CG),
		LastChecked: make([]uint64, len(sup)),
	}
}

// Pos returns the next sequence number to process. It is published
// atomically so the splitter can estimate progress without the lock.
func (wv *WindowVersion) Pos() uint64 { return wv.pos.Load() }

// SetPos publishes the processing position (holder of Mu only).
func (wv *WindowVersion) SetPos(pos uint64) { wv.pos.Store(pos) }

// Finished reports whether the version processed its whole window.
func (wv *WindowVersion) Finished() bool { return wv.finished.Load() }

// MarkFinished flags the version as fully processed.
func (wv *WindowVersion) MarkFinished() { wv.finished.Store(true) }

// ClearFinished resets the finished flag (rollback).
func (wv *WindowVersion) ClearFinished() { wv.finished.Store(false) }

// Dropped reports whether the version has been dropped from the tree.
func (wv *WindowVersion) Dropped() bool { return wv.dropped.Load() }

// MarkDropped flags the version as dropped.
func (wv *WindowVersion) MarkDropped() { wv.dropped.Store(true) }

// Validated reports whether the version's root path is fully resolved in
// its favour and its output has been (or is being) finalized.
func (wv *WindowVersion) Validated() bool { return wv.validated.Load() }

// MarkValidated flags the version as validated.
func (wv *WindowVersion) MarkValidated() { wv.validated.Store(true) }

// ScheduledOn returns the operator instance currently assigned this
// version (-1 when unscheduled).
func (wv *WindowVersion) ScheduledOn() int { return int(wv.scheduled.Load()) - 1 }

// SetScheduledOn records the assigned instance (-1 to clear).
func (wv *WindowVersion) SetScheduledOn(instance int) { wv.scheduled.Store(int32(instance + 1)) }

// UsesAny reports whether any of seqs (ascending) is in wv.Used. Caller
// must hold Mu or otherwise own the version.
func (wv *WindowVersion) UsesAny(seqs []uint64) bool {
	return intersects(wv.Used, seqs)
}

// intersects reports whether two ascending uint64 slices share an element.
func intersects(a, b []uint64) bool {
	if len(a) == 0 || len(b) == 0 {
		return false
	}
	// Walk the shorter slice, binary-searching the longer one.
	if len(a) > len(b) {
		a, b = b, a
	}
	for _, x := range a {
		i := sort.Search(len(b), func(i int) bool { return b[i] >= x })
		if i < len(b) && b[i] == x {
			return true
		}
	}
	return false
}
