// Package stream provides event sources and sinks: in-memory slices,
// channels, and a line-oriented file codec used by the dataset tools and
// the TCP transport.
package stream

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"strconv"
	"strings"

	"github.com/spectrecep/spectre/internal/event"
)

// Source yields events in stream order. Implementations need not assign
// sequence numbers; the consuming engine does that at ingest.
type Source interface {
	// Next returns the next event and true, or a zero event and false at
	// end of stream.
	Next() (event.Event, bool)
}

// ContextSource is implemented by sources whose Next can block
// indefinitely (channels, network reads). NextCtx behaves like Next but
// returns early — reporting end of stream — once ctx is done, so a
// cancelled engine run is not stuck waiting for an event that never
// arrives.
type ContextSource interface {
	Source
	// NextCtx returns the next event, or false at end of stream or when
	// ctx is done first.
	NextCtx(ctx context.Context) (event.Event, bool)
}

// SliceSource streams a slice of events.
type SliceSource struct {
	events []event.Event
	pos    int
}

var _ Source = (*SliceSource)(nil)

// FromSlice returns a source over events.
func FromSlice(events []event.Event) *SliceSource {
	return &SliceSource{events: events}
}

// Next implements Source.
func (s *SliceSource) Next() (event.Event, bool) {
	if s.pos >= len(s.events) {
		return event.Event{}, false
	}
	ev := s.events[s.pos]
	s.pos++
	return ev, true
}

// Reset rewinds the source to the beginning.
func (s *SliceSource) Reset() { s.pos = 0 }

// Len returns the total number of events.
func (s *SliceSource) Len() int { return len(s.events) }

// ChanSource streams events from a channel (closed channel = end of
// stream).
type ChanSource struct{ C <-chan event.Event }

var _ Source = (*ChanSource)(nil)

// FromChan returns a source over ch.
func FromChan(ch <-chan event.Event) *ChanSource { return &ChanSource{C: ch} }

// Next implements Source.
func (s *ChanSource) Next() (event.Event, bool) {
	ev, ok := <-s.C
	return ev, ok
}

var _ ContextSource = (*ChanSource)(nil)

// NextCtx implements ContextSource: a done ctx ends the stream instead of
// blocking on a quiet channel.
func (s *ChanSource) NextCtx(ctx context.Context) (event.Event, bool) {
	select {
	case ev, ok := <-s.C:
		return ev, ok
	case <-ctx.Done():
		return event.Event{}, false
	}
}

// Collect drains a source into a slice.
func Collect(s Source) []event.Event {
	var out []event.Event
	for {
		ev, ok := s.Next()
		if !ok {
			return out
		}
		out = append(out, ev)
	}
}

// WriteEvents encodes events in the repository's line format:
//
//	ts type field0 field1 ...
//
// where type is the registry name. The format is the on-disk dataset
// format of cmd/datagen and the payload of the TCP transport.
func WriteEvents(w io.Writer, reg *event.Registry, events []event.Event) error {
	bw := bufio.NewWriter(w)
	for i := range events {
		ev := &events[i]
		if _, err := fmt.Fprintf(bw, "%d %s", ev.TS, reg.TypeName(ev.Type)); err != nil {
			return fmt.Errorf("stream: write: %w", err)
		}
		for _, f := range ev.Fields {
			if _, err := bw.WriteString(" " + strconv.FormatFloat(f, 'g', -1, 64)); err != nil {
				return fmt.Errorf("stream: write: %w", err)
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return fmt.Errorf("stream: write: %w", err)
		}
	}
	return bw.Flush()
}

// ReadEvents decodes the line format produced by WriteEvents, interning
// event types in reg.
func ReadEvents(r io.Reader, reg *event.Registry) ([]event.Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	var out []event.Event
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		parts := strings.Fields(text)
		if len(parts) < 2 {
			return nil, fmt.Errorf("stream: line %d: need at least ts and type", line)
		}
		ts, err := strconv.ParseInt(parts[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("stream: line %d: bad timestamp: %w", line, err)
		}
		ev := event.Event{TS: ts, Type: reg.TypeID(parts[1])}
		for _, p := range parts[2:] {
			f, err := strconv.ParseFloat(p, 64)
			if err != nil {
				return nil, fmt.Errorf("stream: line %d: bad field %q: %w", line, p, err)
			}
			ev.Fields = append(ev.Fields, f)
		}
		out = append(out, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("stream: read: %w", err)
	}
	return out, nil
}
