package stream

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"github.com/spectrecep/spectre/internal/event"
)

func TestSliceSource(t *testing.T) {
	evs := []event.Event{{TS: 1}, {TS: 2}}
	s := FromSlice(evs)
	if s.Len() != 2 {
		t.Fatal("len")
	}
	got := Collect(s)
	if len(got) != 2 || got[0].TS != 1 || got[1].TS != 2 {
		t.Fatalf("collect = %v", got)
	}
	if _, ok := s.Next(); ok {
		t.Fatal("exhausted source must report false")
	}
	s.Reset()
	if ev, ok := s.Next(); !ok || ev.TS != 1 {
		t.Fatal("reset must rewind")
	}
}

func TestChanSource(t *testing.T) {
	ch := make(chan event.Event, 2)
	ch <- event.Event{TS: 5}
	close(ch)
	got := Collect(FromChan(ch))
	if len(got) != 1 || got[0].TS != 5 {
		t.Fatalf("collect = %v", got)
	}
}

func TestFileRoundTrip(t *testing.T) {
	reg := event.NewRegistry()
	a := reg.TypeID("AAPL")
	b := reg.TypeID("BRK.B")
	evs := []event.Event{
		{TS: 100, Type: a, Fields: []float64{1.25, -3}},
		{TS: 200, Type: b, Fields: []float64{0.5}},
		{TS: 300, Type: a},
	}
	var buf bytes.Buffer
	if err := WriteEvents(&buf, reg, evs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadEvents(&buf, reg)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(evs) {
		t.Fatalf("read %d events, want %d", len(got), len(evs))
	}
	for i := range evs {
		if got[i].TS != evs[i].TS || got[i].Type != evs[i].Type {
			t.Fatalf("event %d: got %+v, want %+v", i, got[i], evs[i])
		}
		if len(got[i].Fields) != len(evs[i].Fields) {
			t.Fatalf("event %d fields: %v vs %v", i, got[i].Fields, evs[i].Fields)
		}
		for j := range evs[i].Fields {
			if got[i].Fields[j] != evs[i].Fields[j] {
				t.Fatalf("event %d field %d: %g vs %g", i, j, got[i].Fields[j], evs[i].Fields[j])
			}
		}
	}
}

// TestFileRoundTripProperty: arbitrary finite field values survive the
// text codec.
func TestFileRoundTripProperty(t *testing.T) {
	reg := event.NewRegistry()
	ty := reg.TypeID("X")
	check := func(ts int64, f1, f2 float64) bool {
		if f1 != f1 || f2 != f2 { // NaN
			return true
		}
		evs := []event.Event{{TS: ts, Type: ty, Fields: []float64{f1, f2}}}
		var buf bytes.Buffer
		if err := WriteEvents(&buf, reg, evs); err != nil {
			return false
		}
		got, err := ReadEvents(&buf, reg)
		if err != nil || len(got) != 1 {
			return false
		}
		return got[0].TS == ts && got[0].Fields[0] == f1 && got[0].Fields[1] == f2
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestReadEventsSkipsCommentsAndBlank(t *testing.T) {
	reg := event.NewRegistry()
	got, err := ReadEvents(strings.NewReader("# header\n\n10 A 1.5\n"), reg)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].TS != 10 {
		t.Fatalf("got %v", got)
	}
}

func TestReadEventsErrors(t *testing.T) {
	reg := event.NewRegistry()
	for _, bad := range []string{"10\n", "xx A\n", "10 A zz\n"} {
		if _, err := ReadEvents(strings.NewReader(bad), reg); err == nil {
			t.Fatalf("input %q must fail", bad)
		}
	}
}

func TestEmptySliceSource(t *testing.T) {
	s := FromSlice(nil)
	if s.Len() != 0 {
		t.Fatal("empty source must report zero length")
	}
	if ev, ok := s.Next(); ok || ev.TS != 0 || ev.Type != event.NoType {
		t.Fatalf("empty source yielded (%+v, %v), want zero event and false", ev, ok)
	}
	// Next after exhaustion stays terminal and allocation-free.
	if _, ok := s.Next(); ok {
		t.Fatal("empty source must stay exhausted")
	}
	if got := Collect(s); len(got) != 0 {
		t.Fatalf("Collect(empty) = %v", got)
	}
	s.Reset()
	if _, ok := s.Next(); ok {
		t.Fatal("reset of an empty source must stay empty")
	}
}

func TestChanSourceClosedBeforeFirstRead(t *testing.T) {
	ch := make(chan event.Event)
	close(ch)
	s := FromChan(ch)
	if ev, ok := s.Next(); ok || ev.TS != 0 {
		t.Fatalf("closed channel yielded (%+v, %v), want zero event and false", ev, ok)
	}
	// Reading a closed channel repeatedly keeps returning end-of-stream.
	if _, ok := s.Next(); ok {
		t.Fatal("closed channel source must stay exhausted")
	}
	if got := Collect(s); len(got) != 0 {
		t.Fatalf("Collect over closed channel = %v", got)
	}
}
