// Package window implements window formation: turning the raw, totally
// ordered input stream into the (possibly overlapping) windows that the
// operator instances process (paper §2.2). Windows are contiguous ranges of
// sequence numbers whose boundaries are fixed at split time by the
// splitter; consumption never changes window extents, only detection inside
// them.
package window

import (
	"fmt"
	"math"
	"sync/atomic"

	"github.com/spectrecep/spectre/internal/event"
	"github.com/spectrecep/spectre/internal/pattern"
)

// UnknownEnd marks a window whose end boundary is not yet determined
// (time-scoped windows before their closing event arrived).
const UnknownEnd = uint64(math.MaxUint64)

// Window is one split of the input stream: the half-open sequence range
// [StartSeq, EndSeq()). StartSeq, StartTS and ID are immutable; the end
// boundary is published atomically by the splitter once known, so operator
// instances may read it concurrently.
type Window struct {
	// ID is the window's position in window order (0-based, dense).
	ID uint64
	// StartSeq is the sequence number of the first event in the window.
	StartSeq uint64
	// StartTS is the timestamp of the opening event (used by
	// duration-scoped windows).
	StartTS int64

	end atomic.Uint64 // exclusive end boundary; UnknownEnd until resolved
}

// NewWindow constructs a window with an unknown end boundary.
func NewWindow(id, startSeq uint64, startTS int64) *Window {
	w := &Window{ID: id, StartSeq: startSeq, StartTS: startTS}
	w.end.Store(UnknownEnd)
	return w
}

// EndSeq returns the exclusive end boundary, or UnknownEnd.
func (w *Window) EndSeq() uint64 { return w.end.Load() }

// SetEndSeq publishes the end boundary (splitter only).
func (w *Window) SetEndSeq(end uint64) { w.end.Store(end) }

// Resolved reports whether the end boundary is known.
func (w *Window) Resolved() bool { return w.end.Load() != UnknownEnd }

// Size returns the window length in events; it is only meaningful once
// resolved.
func (w *Window) Size() uint64 {
	end := w.end.Load()
	if end == UnknownEnd {
		return 0
	}
	return end - w.StartSeq
}

// Contains reports whether seq falls inside the window (unresolved windows
// contain everything from StartSeq on).
func (w *Window) Contains(seq uint64) bool {
	return seq >= w.StartSeq && seq < w.end.Load()
}

// Overlaps reports whether window v shares events with w.
// Windows with unknown boundaries are conservatively treated as
// overlapping every successor.
func (w *Window) Overlaps(v *Window) bool {
	if w.StartSeq <= v.StartSeq {
		return v.StartSeq < w.end.Load()
	}
	return w.StartSeq < v.end.Load()
}

// String implements fmt.Stringer.
func (w *Window) String() string {
	if w.Resolved() {
		return fmt.Sprintf("w%d[%d,%d)", w.ID, w.StartSeq, w.end.Load())
	}
	return fmt.Sprintf("w%d[%d,?)", w.ID, w.StartSeq)
}

// Manager forms windows from the event stream according to a WindowSpec.
// It is used single-threaded by the splitter (and by the sequential
// engine). Events must be observed in sequence order.
type Manager struct {
	spec   pattern.WindowSpec
	nextID uint64

	// pendingEnd holds duration-scoped windows whose end boundary is not
	// yet known, in open order.
	pendingEnd []*Window

	// Average window-size statistics (paper Fig. 5 line 2 uses the
	// splitter's average window size).
	sizeSum   float64
	sizeCount int
}

// NewManager returns a manager for spec. The spec must be valid.
func NewManager(spec pattern.WindowSpec) *Manager {
	return &Manager{spec: spec}
}

// Spec returns the manager's window specification.
func (m *Manager) Spec() pattern.WindowSpec { return m.spec }

// Observe ingests the next event and reports newly opened windows and
// windows whose end boundary just became known. The returned slices are
// only valid until the next call.
func (m *Manager) Observe(ev *event.Event) (opened, resolved []*Window) {
	// Resolve pending duration windows first: a window scoped `WITHIN d`
	// ends right before the first event at or past StartTS+d.
	if m.spec.EndKind == pattern.EndDuration {
		for len(m.pendingEnd) > 0 {
			w := m.pendingEnd[0]
			if ev.TS-w.StartTS < int64(m.spec.Duration) {
				break
			}
			w.SetEndSeq(ev.Seq)
			m.recordSize(w)
			resolved = append(resolved, w)
			m.pendingEnd = m.pendingEnd[1:]
		}
	}

	opens := false
	switch m.spec.StartKind {
	case pattern.StartEvery:
		opens = ev.Seq%uint64(m.spec.Every) == 0
	case pattern.StartOnMatch:
		opens = m.spec.StartMatches(ev)
	}
	if opens {
		w := NewWindow(m.nextID, ev.Seq, ev.TS)
		m.nextID++
		if m.spec.EndKind == pattern.EndCount {
			w.SetEndSeq(w.StartSeq + uint64(m.spec.Count))
			m.recordSize(w)
			resolved = append(resolved, w)
		} else {
			m.pendingEnd = append(m.pendingEnd, w)
		}
		opened = append(opened, w)
	}
	return opened, resolved
}

// Finish resolves all still-pending windows at stream end: their boundary
// is the stream length.
func (m *Manager) Finish(streamLen uint64) (resolved []*Window) {
	for _, w := range m.pendingEnd {
		w.SetEndSeq(streamLen)
		m.recordSize(w)
		resolved = append(resolved, w)
	}
	m.pendingEnd = nil
	return resolved
}

func (m *Manager) recordSize(w *Window) {
	m.sizeSum += float64(w.Size())
	m.sizeCount++
}

// AvgSize returns the average resolved window size in events. Before any
// window resolved it falls back to the spec's count (count windows) or 1.
func (m *Manager) AvgSize() float64 {
	if m.sizeCount == 0 {
		if m.spec.EndKind == pattern.EndCount {
			return float64(m.spec.Count)
		}
		return 1
	}
	return m.sizeSum / float64(m.sizeCount)
}

// Opened reports how many windows have been opened so far.
func (m *Manager) Opened() uint64 { return m.nextID }

// ResumeAt fast-forwards the id assignment to nextID without opening
// windows. Crash recovery primes a fresh manager with the persisted cut's
// next-window id before replaying the journal suffix: windows below the
// cut already popped and must never be re-assigned, while the replayed
// events re-open the live windows under their original ids (window
// formation depends only on Seq/TS, so replay re-forms them identically).
func (m *Manager) ResumeAt(nextID uint64) {
	if nextID > m.nextID {
		m.nextID = nextID
	}
}
