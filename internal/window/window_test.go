package window

import (
	"testing"
	"time"

	"github.com/spectrecep/spectre/internal/event"
	"github.com/spectrecep/spectre/internal/pattern"
)

func observeAll(m *Manager, events []event.Event) (opened []*Window) {
	for i := range events {
		events[i].Seq = uint64(i)
		o, _ := m.Observe(&events[i])
		opened = append(opened, o...)
	}
	return opened
}

func TestCountSlidingWindows(t *testing.T) {
	m := NewManager(pattern.WindowSpec{
		StartKind: pattern.StartEvery, Every: 10,
		EndKind: pattern.EndCount, Count: 25,
	})
	events := make([]event.Event, 35)
	opened := observeAll(m, events)
	if len(opened) != 4 { // at seq 0, 10, 20, 30
		t.Fatalf("opened %d windows, want 4", len(opened))
	}
	w0 := opened[0]
	if !w0.Resolved() || w0.StartSeq != 0 || w0.EndSeq() != 25 {
		t.Fatalf("w0 = %v", w0)
	}
	if w0.Size() != 25 {
		t.Fatalf("size = %d, want 25", w0.Size())
	}
	if !w0.Contains(24) || w0.Contains(25) {
		t.Fatal("containment bounds")
	}
	if !w0.Overlaps(opened[1]) || !w0.Overlaps(opened[2]) || w0.Overlaps(opened[3]) {
		t.Fatal("overlap relations with slides 10/20/30 vs end 25")
	}
	if m.AvgSize() != 25 {
		t.Fatalf("avg size = %g, want 25", m.AvgSize())
	}
}

func TestPredicateStartDurationEnd(t *testing.T) {
	reg := event.NewRegistry()
	ta := reg.TypeID("A")
	tb := reg.TypeID("B")
	m := NewManager(pattern.WindowSpec{
		StartKind:  pattern.StartOnMatch,
		StartTypes: []event.Type{ta},
		EndKind:    pattern.EndDuration,
		Duration:   time.Minute,
	})
	sec := func(s int) int64 { return int64(s) * int64(time.Second) }
	events := []event.Event{
		{TS: sec(0), Type: ta},  // opens w0
		{TS: sec(30), Type: tb}, // inside
		{TS: sec(59), Type: ta}, // opens w1
		{TS: sec(61), Type: tb}, // resolves w0 (61 ≥ 0+60)
		{TS: sec(200), Type: tb},
	}
	opened := observeAll(m, events)
	if len(opened) != 2 {
		t.Fatalf("opened %d windows, want 2", len(opened))
	}
	w0, w1 := opened[0], opened[1]
	if !w0.Resolved() || w0.EndSeq() != 3 {
		t.Fatalf("w0 end = %v, want 3 (the first event at/past the boundary)", w0.EndSeq())
	}
	if !w1.Resolved() || w1.EndSeq() != 4 {
		t.Fatalf("w1 end = %v, want 4 (event at 200s resolves it)", w1.EndSeq())
	}
	if m.Opened() != 2 {
		t.Fatalf("Opened = %d", m.Opened())
	}
}

func TestFinishResolvesPending(t *testing.T) {
	reg := event.NewRegistry()
	ta := reg.TypeID("A")
	m := NewManager(pattern.WindowSpec{
		StartKind:  pattern.StartOnMatch,
		StartTypes: []event.Type{ta},
		EndKind:    pattern.EndDuration,
		Duration:   time.Hour,
	})
	events := []event.Event{{TS: 0, Type: ta}, {TS: 1, Type: ta}}
	opened := observeAll(m, events)
	if opened[0].Resolved() {
		t.Fatal("window must be unresolved before Finish")
	}
	resolved := m.Finish(2)
	if len(resolved) != 2 {
		t.Fatalf("Finish resolved %d windows, want 2", len(resolved))
	}
	if opened[0].EndSeq() != 2 || opened[1].EndSeq() != 2 {
		t.Fatal("Finish must set the boundary to the stream length")
	}
}

func TestUnresolvedOverlapConservative(t *testing.T) {
	w1 := NewWindow(0, 0, 0)
	w2 := NewWindow(1, 100, 0)
	if !w1.Overlaps(w2) {
		t.Fatal("unresolved windows must conservatively overlap successors")
	}
	w1.SetEndSeq(50)
	if w1.Overlaps(w2) {
		t.Fatal("resolved non-overlapping windows must not overlap")
	}
}

func TestAvgSizeFallback(t *testing.T) {
	m := NewManager(pattern.WindowSpec{
		StartKind: pattern.StartEvery, Every: 5,
		EndKind: pattern.EndCount, Count: 42,
	})
	if m.AvgSize() != 42 {
		t.Fatalf("count-window fallback avg = %g, want 42", m.AvgSize())
	}
	md := NewManager(pattern.WindowSpec{
		StartKind: pattern.StartEvery, Every: 5,
		EndKind: pattern.EndDuration, Duration: time.Second,
	})
	if md.AvgSize() != 1 {
		t.Fatalf("duration-window fallback avg = %g, want 1", md.AvgSize())
	}
}

func TestWindowString(t *testing.T) {
	w := NewWindow(2, 10, 0)
	if w.String() != "w2[10,?)" {
		t.Fatalf("unresolved string = %q", w.String())
	}
	w.SetEndSeq(20)
	if w.String() != "w2[10,20)" {
		t.Fatalf("resolved string = %q", w.String())
	}
}

// TestFinishWithoutResolutions covers the stream-cut edge: windows open
// but the stream ends before any duration boundary arrives, so every
// boundary (and the size statistics) comes from Finish alone.
func TestFinishWithoutResolutions(t *testing.T) {
	reg := event.NewRegistry()
	ta := reg.TypeID("A")
	m := NewManager(pattern.WindowSpec{
		StartKind:  pattern.StartOnMatch,
		StartTypes: []event.Type{ta},
		EndKind:    pattern.EndDuration,
		Duration:   time.Hour,
	})
	// Before anything happened, AvgSize falls back to 1 for duration
	// windows and Finish on an empty manager is a no-op.
	if m.AvgSize() != 1 {
		t.Fatalf("AvgSize fallback = %v, want 1", m.AvgSize())
	}
	if resolved := m.Finish(0); len(resolved) != 0 {
		t.Fatalf("Finish with no windows resolved %d", len(resolved))
	}

	events := []event.Event{
		{TS: 0, Type: ta},
		{TS: int64(time.Minute), Type: ta},
		{TS: int64(2 * time.Minute), Type: ta},
	}
	opened := observeAll(m, events)
	if len(opened) != 3 {
		t.Fatalf("opened %d windows, want 3", len(opened))
	}
	for i, w := range opened {
		if w.Resolved() {
			t.Fatalf("window %d resolved before Finish", i)
		}
		if w.Size() != 0 {
			t.Fatalf("unresolved window %d must report size 0", i)
		}
	}
	resolved := m.Finish(uint64(len(events)))
	if len(resolved) != 3 {
		t.Fatalf("Finish resolved %d windows, want 3", len(resolved))
	}
	// Boundaries are the stream length; sizes shrink with the start seq.
	for i, w := range opened {
		if w.EndSeq() != 3 {
			t.Fatalf("window %d boundary = %d, want 3", i, w.EndSeq())
		}
		if want := uint64(3 - i); w.Size() != want {
			t.Fatalf("window %d size = %d, want %d", i, w.Size(), want)
		}
	}
	// The averaged sizes (3+2+1)/3 feed the scheduler's probability model.
	if got := m.AvgSize(); got != 2 {
		t.Fatalf("AvgSize = %v, want 2", got)
	}
	// Finish is terminal: a second call has nothing left to resolve.
	if again := m.Finish(99); len(again) != 0 {
		t.Fatalf("second Finish resolved %d windows", len(again))
	}
}
