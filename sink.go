package spectre

// Sink receives a query's output. It replaces the bare emit callback of
// the v1 API: matches, asynchronous errors and end-of-stream all arrive
// through one interface, and the runtime serializes every call per
// engine/handle — implementations need no internal locking, but must not
// call back into the engine or handle that invokes them.
type Sink interface {
	// OnMatch receives every detected complex event, in canonical order
	// within a shard (window order; detection order within a window).
	OnMatch(ComplexEvent)
	// OnError receives asynchronous per-query errors — today, the context
	// error when the submission or run context is cancelled mid-stream.
	// Synchronous errors (bad options, compile failures) are returned
	// from the calling method instead and never reach OnError.
	OnError(error)
	// OnDrain fires exactly once, after the query has fully drained:
	// every admitted event processed (or, after an abort, discarded) and
	// no further OnMatch/OnError calls to come.
	OnDrain()
}

// SinkFunc adapts a plain match callback to a Sink, so one-liners keep
// working: OnMatch calls the function, OnError and OnDrain are no-ops.
// A nil SinkFunc discards matches.
type SinkFunc func(ComplexEvent)

// OnMatch implements Sink.
func (f SinkFunc) OnMatch(ce ComplexEvent) {
	if f != nil {
		f(ce)
	}
}

// OnError implements Sink as a no-op.
func (f SinkFunc) OnError(error) {}

// OnDrain implements Sink as a no-op.
func (f SinkFunc) OnDrain() {}
