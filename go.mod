module github.com/spectrecep/spectre

go 1.23
