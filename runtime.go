package spectre

import (
	"fmt"
	"runtime"

	"github.com/spectrecep/spectre/internal/core"
	"github.com/spectrecep/spectre/internal/event"
	"github.com/spectrecep/spectre/internal/pattern"
	"github.com/spectrecep/spectre/internal/shard"
)

// Runtime errors, re-exported from the internal runtime.
var (
	// ErrAlreadyRan is returned when Engine.Run is called twice.
	ErrAlreadyRan = core.ErrAlreadyRan
	// ErrRuntimeClosed is returned by Submit/Run after Runtime.Close.
	ErrRuntimeClosed = core.ErrRuntimeClosed
	// ErrHandleClosed is returned by Handle.Feed after Handle.Close.
	ErrHandleClosed = core.ErrHandleClosed
)

// PartitionSpec describes key-partitioned execution (the PARTITION BY
// clause), re-exported from the query model.
type PartitionSpec = pattern.PartitionSpec

// RuntimeOption configures a Runtime.
type RuntimeOption func(*core.RuntimeConfig)

// WithWorkers sizes the runtime's shared worker pool (default GOMAXPROCS).
func WithWorkers(n int) RuntimeOption {
	return func(c *core.RuntimeConfig) { c.Workers = n }
}

// WithShards overrides the shard count of a partitioned query submitted to
// a Runtime (default: the query's PARTITION BY ... SHARDS value, then
// GOMAXPROCS).
func WithShards(n int) Option {
	return func(c *core.Config) { c.Shards = n }
}

// WithPartitionBy partitions the query's input stream by the named payload
// field, overriding any PARTITION BY clause in the query text. Runtime
// submissions only; a standalone Engine ignores it.
func WithPartitionBy(field string) Option {
	return func(c *core.Config) {
		c.Partition = &pattern.PartitionSpec{Field: -1, FieldName: field}
	}
}

// WithPartitionByType partitions the query's input stream by event type
// (e.g. per stock symbol), overriding any PARTITION BY clause in the query
// text. Runtime submissions only; a standalone Engine ignores it.
func WithPartitionByType() Option {
	return func(c *core.Config) {
		c.Partition = &pattern.PartitionSpec{ByType: true, Field: -1}
	}
}

// Runtime is the long-lived, multi-query SPECTRE service. Unlike Engine —
// one query, one stream, one run — a Runtime hosts many concurrent
// queries, partitions each query's input by a key attribute (PARTITION BY
// in the query text, or WithPartitionBy/WithPartitionByType) into
// independent shards, and multiplexes every (query, shard) SPECTRE
// pipeline onto one shared worker pool sized to the machine.
//
//	rt := spectre.NewRuntime(reg)
//	h, err := rt.Submit(query, func(ce spectre.ComplexEvent) { ... })
//	// handle err
//	for _, ev := range events {
//	    _ = h.Feed(ev)
//	}
//	h.Drain()
//	rt.Close()
type Runtime struct {
	rt  *core.Runtime
	reg *Registry
}

// NewRuntime starts a runtime. The registry must be the one shared by the
// queries and event sources fed to it.
func NewRuntime(reg *Registry, opts ...RuntimeOption) *Runtime {
	var cfg core.RuntimeConfig
	for _, opt := range opts {
		opt(&cfg)
	}
	return &Runtime{rt: core.NewRuntime(cfg), reg: reg}
}

// Handle is one query submitted to a Runtime.
type Handle struct {
	h *core.Handle
}

// Submit compiles and starts q on the runtime. emit receives every
// detected complex event of this query (per-handle callback, serialized;
// within a shard the order is canonical — exactly a standalone Engine's
// order over that partition's substream). Options are the Engine options
// plus WithShards/WithPartitionBy/WithPartitionByType.
func (rt *Runtime) Submit(q *Query, emit func(ComplexEvent), opts ...Option) (*Handle, error) {
	var cfg core.Config
	for _, opt := range opts {
		opt(&cfg)
	}

	spec := cfg.Partition
	if spec == nil {
		spec = q.Partition
	}
	nShards := 1
	var route func(*event.Event) int
	if spec != nil {
		resolved := *spec
		if !resolved.ByType && resolved.Field < 0 {
			if resolved.FieldName == "" {
				return nil, fmt.Errorf("spectre: partition spec names no key")
			}
			resolved.Field = rt.reg.FieldIndex(resolved.FieldName)
		}
		nShards = cfg.Shards
		if nShards <= 0 {
			nShards = resolved.Shards
		}
		if nShards <= 0 {
			nShards = runtime.GOMAXPROCS(0)
		}
		key, err := shard.FromSpec(&resolved)
		if err != nil {
			return nil, fmt.Errorf("spectre: %w", err)
		}
		route = shard.NewRouter(nShards, key).Route
	} else if cfg.Shards > 1 {
		return nil, fmt.Errorf("spectre: %d shards requested but the query has no partition key (use PARTITION BY or WithPartitionBy)", cfg.Shards)
	}

	var coreEmit func(event.Complex)
	if emit != nil {
		coreEmit = func(ce event.Complex) { emit(ce) }
	}
	h, err := rt.rt.Submit(q, cfg, route, nShards, coreEmit)
	if err != nil {
		return nil, err
	}
	return &Handle{h: h}, nil
}

// Run feeds src to every currently submitted query (each routes events
// through its own partitioner), closes the handles and waits until all of
// them drain. It is the batch convenience on top of Feed/Close/Wait.
func (rt *Runtime) Run(src Source) error {
	return rt.rt.Run(src)
}

// Close drains every handle gracefully and stops the worker pool. The
// runtime is unusable afterwards.
func (rt *Runtime) Close() error { return rt.rt.Close() }

// Name returns the query's name.
func (h *Handle) Name() string { return h.h.Name() }

// Shards returns how many shards the query runs on.
func (h *Handle) Shards() int { return h.h.Shards() }

// Feed routes one event to its shard. Events must arrive in stream order
// per handle. It returns ErrHandleClosed after Close.
func (h *Handle) Feed(ev Event) error { return h.h.Feed(ev) }

// Close marks end of stream; pending events are still processed.
func (h *Handle) Close() { h.h.Close() }

// Wait blocks until every shard of the query has drained (Close first).
func (h *Handle) Wait() { h.h.Wait() }

// Drain closes the handle and waits for completion.
func (h *Handle) Drain() { h.h.Drain() }

// Metrics aggregates the runtime counters across the query's shards.
func (h *Handle) Metrics() Metrics { return h.h.Metrics() }

// ShardMetrics returns the per-shard runtime counters.
func (h *Handle) ShardMetrics() []Metrics { return h.h.ShardMetrics() }
