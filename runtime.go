package spectre

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"github.com/spectrecep/spectre/internal/core"
	"github.com/spectrecep/spectre/internal/durable"
	"github.com/spectrecep/spectre/internal/event"
	"github.com/spectrecep/spectre/internal/pattern"
	"github.com/spectrecep/spectre/internal/plan"
	"github.com/spectrecep/spectre/internal/shard"
)

// PartitionSpec describes key-partitioned execution (the PARTITION BY
// clause), re-exported from the query model.
type PartitionSpec = pattern.PartitionSpec

// RuntimeOption configures a Runtime. Invalid arguments are reported by
// NewRuntime, never silently replaced with a default.
type RuntimeOption func(*core.RuntimeConfig)

// WithWorkers sizes the runtime's shared worker pool (default GOMAXPROCS).
func WithWorkers(n int) RuntimeOption {
	return func(c *core.RuntimeConfig) {
		if n <= 0 || n > maxOptionValue {
			c.SetError(fmt.Errorf("spectre: WithWorkers(%d): value must be in [1, %d]", n, maxOptionValue))
			return
		}
		c.Workers = n
	}
}

// WithDurability makes every query submitted to the runtime durable: a
// per-shard write-ahead log under dir persists the ingest journal,
// matcher checkpoints and emission watermarks, off the hot path. After a
// crash, re-submitting the same (named) queries against the same
// directory rebuilds their state; Runtime.Recover then blocks until the
// replay completes, and Handle.Recovered reports the positions producers
// should re-feed from. Matches delivered before the crash are suppressed
// on replay — the delivered stream stays exactly-once on the kept
// substream (DESIGN.md §11).
func WithDurability(dir string) RuntimeOption {
	return func(c *core.RuntimeConfig) {
		if dir == "" {
			c.SetError(fmt.Errorf("spectre: WithDurability: state directory must not be empty"))
			return
		}
		st, err := durable.NewFileStore(dir)
		if err != nil {
			c.SetError(fmt.Errorf("spectre: WithDurability(%q): %w", dir, err))
			return
		}
		c.Durable = st
	}
}

// WithShards overrides the shard count of a partitioned query submitted to
// a Runtime (default: the query's PARTITION BY ... SHARDS value, then
// GOMAXPROCS).
func WithShards(n int) Option {
	return func(c *core.Config) {
		if validCount(c, "WithShards", n) {
			c.Shards = n
		}
	}
}

// WithPartitionBy partitions the query's input stream by the named payload
// field, overriding any PARTITION BY clause in the query text. Runtime
// submissions only; a standalone Engine ignores it.
func WithPartitionBy(field string) Option {
	return func(c *core.Config) {
		c.Partition = &pattern.PartitionSpec{Field: -1, FieldName: field}
	}
}

// WithPartitionByType partitions the query's input stream by event type
// (e.g. per stock symbol), overriding any PARTITION BY clause in the query
// text. Runtime submissions only; a standalone Engine ignores it.
func WithPartitionByType() Option {
	return func(c *core.Config) {
		c.Partition = &pattern.PartitionSpec{ByType: true, Field: -1}
	}
}

// Runtime is the long-lived, multi-query SPECTRE service. Unlike Engine —
// one query, one stream, one run — a Runtime hosts many concurrent
// queries, partitions each query's input by a key attribute (PARTITION BY
// in the query text, or WithPartitionBy/WithPartitionByType) into
// independent shards, and multiplexes every (query, shard) SPECTRE
// pipeline onto one shared worker pool sized to the machine.
//
//	rt, err := spectre.NewRuntime(reg)
//	// handle err
//	h, err := rt.Submit(ctx, query, spectre.SinkFunc(func(ce spectre.ComplexEvent) { ... }))
//	// handle err
//	for _, batch := range batches {
//	    _ = h.FeedBatch(ctx, batch)
//	}
//	h.Drain()
//	rt.Shutdown(ctx)
type Runtime struct {
	rt    *core.Runtime
	reg   *Registry
	store durable.Store // owned by this Runtime when WithDurability built it; nil otherwise
}

// NewRuntime starts a runtime. The registry must be the one shared by the
// queries and event sources fed to it. Invalid options (e.g.
// WithWorkers(0)) are reported as an error.
func NewRuntime(reg *Registry, opts ...RuntimeOption) (*Runtime, error) {
	var cfg core.RuntimeConfig
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.Err != nil {
		if cfg.Durable != nil {
			_ = cfg.Durable.Close()
		}
		return nil, cfg.Err
	}
	return &Runtime{rt: core.NewRuntime(cfg), reg: reg, store: cfg.Durable}, nil
}

// Handle is one query submitted to a Runtime. Feed/TryFeed/FeedBatch are
// single-producer: events of one handle must be fed from one goroutine
// (or externally serialized) so the stream order is well-defined.
type Handle struct {
	h       *core.Handle
	mu      sync.Mutex // serializes every sink invocation; guards the fields below
	sink    Sink
	drained bool        // OnDrain delivered; suppresses any later OnError
	stop    func() bool // cancels the submission-context watcher
}

// Submit compiles and starts q on the runtime. The sink receives the
// query's output (serialized per handle; within a shard the match order
// is canonical — exactly a standalone Engine's order over that
// partition's substream); it may be nil to discard matches. Options are
// the Engine options plus WithShards/WithPartitionBy/WithPartitionByType.
//
// ctx governs the submission's lifetime: if it is cancelled while the
// query is live, the handle aborts — pending events are discarded, the
// sink hears OnError(ctx.Err()) and then OnDrain. Compile and validation
// failures are returned synchronously as a *QueryError.
func (rt *Runtime) Submit(ctx context.Context, q *Query, sink Sink, opts ...Option) (*Handle, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var cfg core.Config
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.Err != nil {
		return nil, queryErr(q, cfg.Err)
	}
	if cfg.Reg == nil {
		cfg.Reg = rt.reg
	}

	// Plan-driven deployment: unless pinned by explicit options, the shard
	// count and scheduling policy follow the query's estimated per-event
	// cost.
	var est plan.Estimate
	autoSched, autoShards := false, false
	if !cfg.PlanDisabled {
		est = plan.EstimateQuery(q)
		if !cfg.SchedSet {
			cfg.Sched.Kind = est.RecommendedSched
			autoSched = true
		}
	}

	spec := cfg.Partition
	if spec == nil {
		spec = q.Partition
	}
	nShards := 1
	var route func(*event.Event) int
	if spec != nil {
		resolved := *spec
		if !resolved.ByType && resolved.Field < 0 {
			if resolved.FieldName == "" {
				return nil, queryErr(q, fmt.Errorf("partition spec names no key"))
			}
			resolved.Field = rt.reg.FieldIndex(resolved.FieldName)
		}
		nShards = cfg.Shards
		if nShards <= 0 {
			nShards = resolved.Shards
		}
		if nShards <= 0 {
			// Neither WithShards nor the query pinned a count: planner's
			// recommendation when available, GOMAXPROCS otherwise.
			if !cfg.PlanDisabled {
				nShards = est.RecommendedShards
				autoShards = true
			} else {
				nShards = runtime.GOMAXPROCS(0)
			}
		}
		key, err := shard.FromSpec(&resolved)
		if err != nil {
			return nil, queryErr(q, err)
		}
		route = shard.NewRouter(nShards, key).Route
	} else if cfg.Shards > 1 {
		return nil, queryErr(q, fmt.Errorf("%d shards requested but the query has no partition key (use PARTITION BY or WithPartitionBy)", cfg.Shards))
	}

	h := &Handle{sink: sink}
	var emit func(event.Complex)
	if sink != nil {
		emit = func(ce event.Complex) {
			h.mu.Lock()
			sink.OnMatch(ce)
			h.mu.Unlock()
		}
	}
	ch, err := rt.rt.Submit(q, cfg, route, nShards, emit, h.notifyDrain)
	if err != nil {
		if errors.Is(err, ErrRuntimeClosed) {
			return nil, err
		}
		return nil, queryErr(q, err)
	}
	h.h = ch
	if p := ch.Plan(); p != nil {
		p.SetDeployment(nShards, cfg.Sched.Kind, autoShards, autoSched)
	}
	if ctx.Done() != nil {
		h.mu.Lock()
		alreadyDrained := h.drained
		h.stop = context.AfterFunc(ctx, func() {
			h.mu.Lock()
			if h.drained {
				// The query drained before the cancellation landed: the
				// sink already heard its terminal OnDrain, nothing to do.
				h.mu.Unlock()
				return
			}
			if sink != nil {
				sink.OnError(ctx.Err())
			}
			h.mu.Unlock()
			// Abort and drive the drain ourselves, so the sink hears
			// OnError and then OnDrain even if the caller never Waits.
			ch.Abort()
			ch.Wait()
		})
		h.mu.Unlock()
		if alreadyDrained {
			h.stop()
		}
	}
	return h, nil
}

// notifyDrain forwards the core drain notification to the sink (exactly
// once, serialized with OnMatch/OnError, and terminal: later
// cancellations are suppressed) and disarms the submission-context
// watcher.
func (h *Handle) notifyDrain() {
	h.mu.Lock()
	h.drained = true
	stop := h.stop
	if h.sink != nil {
		h.sink.OnDrain()
	}
	h.mu.Unlock()
	if stop != nil {
		stop()
	}
}

// Run feeds src to every currently submitted query (each routes events
// through its own partitioner), closes the handles and waits until all of
// them drain. A done ctx stops mid-stream (the handles still drain what
// they admitted) and is reported as ctx.Err(). It is the batch
// convenience on top of Feed/Close/Wait.
func (rt *Runtime) Run(ctx context.Context, src Source) error {
	return rt.rt.Run(ctx, src)
}

// Close drains every handle gracefully and stops the worker pool, with no
// deadline. The runtime is unusable afterwards. Equivalent to
// Shutdown(context.Background()).
func (rt *Runtime) Close() error { return rt.closeStore(rt.rt.Close()) }

// Shutdown closes every handle (end of stream) and waits for the admitted
// backlog to drain. If ctx expires first, the remaining queries are
// aborted — pending events discarded, their sinks notified — and
// ctx.Err() is returned. Either way the worker pool stops and the runtime
// is unusable afterwards.
func (rt *Runtime) Shutdown(ctx context.Context) error {
	return rt.closeStore(rt.rt.Shutdown(ctx))
}

// closeStore releases the WithDurability store after the core runtime has
// stopped (every shard log is closed by then). The runtime owns that
// store; a store injected at the core layer is its creator's to close.
func (rt *Runtime) closeStore(err error) error {
	if rt.store == nil {
		return err
	}
	if cerr := rt.store.Close(); err == nil {
		err = cerr
	}
	return err
}

// Recover blocks until every durable query submitted so far has finished
// replaying its recovered ingest journal, or ctx is done. Call it after
// re-submitting the queries of a crashed process (same names, same state
// directory) and before feeding new input: once it returns, each shard
// has re-formed its pre-crash windows and producers may resume from the
// positions reported by Handle.Recovered. Without durability it returns
// immediately.
func (rt *Runtime) Recover(ctx context.Context) error { return rt.rt.Recover(ctx) }

// Name returns the query's name.
func (h *Handle) Name() string { return h.h.Name() }

// Shards returns how many shards the query runs on.
func (h *Handle) Shards() int { return h.h.Shards() }

// Feed routes one event to its shard, blocking while the shard's queue is
// full (backpressure). Events must arrive in stream order per handle. It
// returns ErrHandleClosed after Close, or ctx.Err() when ctx is done
// before the event is admitted.
func (h *Handle) Feed(ctx context.Context, ev Event) error { return h.h.Feed(ctx, ev) }

// TryFeed routes one event to its shard without ever blocking: a full
// shard queue rejects it with an *OverloadError (errors.Is
// ErrOverloaded). This is the admission signal for overload-aware
// producers — shed, sample or retry instead of stalling.
func (h *Handle) TryFeed(ev Event) error { return h.h.TryFeed(ev) }

// FeedBatch routes a batch of in-order events with one queue handoff per
// (batch, shard) instead of one per event — the cheap path for
// high-throughput producers. It blocks like Feed on full shard queues and
// unblocks with ctx.Err() on cancellation; on error, events routed to
// earlier shards may already be admitted (each shard always receives an
// in-order prefix of its substream).
func (h *Handle) FeedBatch(ctx context.Context, evs []Event) error { return h.h.FeedBatch(ctx, evs) }

// Close marks end of stream; pending events are still processed.
func (h *Handle) Close() { h.h.Close() }

// Wait blocks until every shard of the query has drained (Close first).
func (h *Handle) Wait() { h.h.Wait() }

// Drain closes the handle and waits for completion.
func (h *Handle) Drain() {
	h.Close()
	h.Wait()
}

// Park detaches a durable query without ending its stream and waits for
// the detach to complete: in-flight windows stay in the WAL (a Drain
// would run them to completion at today's stream length instead), and a
// later Submit of the same query name against the same state directory
// resumes them — the producer re-feeds from Handle.Recovered. This is
// how a server releases a disconnected client's durable query so a
// reconnect can take over. On a non-durable handle it behaves like
// Drain.
func (h *Handle) Park() {
	h.h.Park()
	h.h.Wait()
}

// Recovered reports, per shard, the next event position the durable log
// had journalled when the query was submitted — the offset producers
// must resume this shard's substream from for gap-free, duplicate-free
// recovery (events before it are replayed from the journal). Nil when
// the query is not durable.
func (h *Handle) Recovered() []uint64 { return h.h.Recovered() }

// Plan returns the submitted query's evaluation plan, or nil when the
// planner is disabled (WithoutPlanner).
func (h *Handle) Plan() *QueryPlan { return h.h.Plan() }

// Metrics aggregates the runtime counters across the query's shards.
func (h *Handle) Metrics() Metrics { return h.h.Metrics() }

// ShardMetrics returns the per-shard runtime counters.
func (h *Handle) ShardMetrics() []Metrics { return h.h.ShardMetrics() }
